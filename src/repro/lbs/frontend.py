"""The asyncio TCP front-end of the anonymization service.

This is the subsystem that puts :class:`~repro.lbs.service.AnonymizerService`
on a socket — the paper's trusted anonymizer finally *serving*, not just
callable. One event loop multiplexes any number of client connections onto
one service; the blocking engine work runs off-loop so the socket plane
stays responsive while a batch cloaks.

**Frame protocol** (see :mod:`repro.lbs.framing` for the byte layer):
every frame payload is a JSON object. Requests:

    ``{"request_id": <int|str>, "request": <wire document>,
       "deadline_ms": <optional float>}``

``request`` is any document :meth:`AnonymizerService.handle` accepts — the
front-end adds no formats of its own except that ``repro.stats_request``
replies are enriched with the front-end's counters. A frame-level
``deadline_ms`` is a convenience default: it is copied into the inner
document when (and only when) that document carries none. Replies:

    ``{"request_id": <echoed>, "outcome": <outcome document>}``

**Multiplexing.** Requests on one connection are independent: many may be
in flight, and replies come back *as completed* — out of submission order —
correlated only by the echoed ``request_id`` (any JSON string or integer;
uniqueness is the client's business). Frames the server cannot attribute
(bad JSON, missing ``request_id``) are answered with ``request_id: null``
and a structured ``malformed_document`` outcome.

**Batch coalescing.** Single cloak and single reversal documents are not
served one by one: each lands in a per-format lane, and a lane is flushed
into one :meth:`AnonymizerService.handle_batch` call when it holds
``batch_max`` items, when ``batch_window_ms`` elapses since its first
item, or — the adaptive case — the moment the serving executor comes free
while earlier work had it busy (see the lane implementation notes). A
process-pool backend therefore pays its dispatch overhead once per
coalesced batch instead of once per connection round-trip, and saturated
batches grow toward ``batch_max`` on their own, which is what makes the
socket path's throughput track the raw ``cloak_batch`` numbers
(``BENCH_frontend.json``). Positional outcomes are de-multiplexed back to
their connections. Other formats (reversal batches, stats, unknown)
bypass the lanes and serve individually.

**Overload.** Two bounded queues guard admission *before* the service's
own ``max_inflight`` budget: a global cap (``max_pending``) and a
per-connection cap (``max_connection_pending``, so one greedy client
cannot starve the rest). A frame past either cap is shed immediately with
the structured ``overloaded`` code — same contract as service-level
shedding, one layer earlier.

**Deadline propagation.** A request carrying ``deadline_ms`` (on the
frame or the document) is stamped on arrival; at dispatch time the
front-end subtracts the queue/coalesce wait, sheds already-expired
requests with ``deadline_exceeded`` *before* they reach the executor, and
forwards only the *remaining* budget as the document's ``deadline_ms`` —
so the cooperative deadline the engine honors measures end-to-end time,
not just engine time.

**Connection lifecycle.** Every peer is assumed hostile until it behaves:
a connection that completes no frame within ``idle_timeout_s`` is closed
(slow-loris included — trickling bytes does not reset the clock, though a
peer still owed replies is never idle); a peer
that stops *reading* is evicted once its write backlog exceeds
``max_write_buffer_bytes`` or stays above the flow-control high-water
mark past ``drain_timeout_s`` (each connection drains independently, so
one stalled peer cannot wedge a coalesced batch's reply fan-out); a peer
that keeps sending malformed frames is cut off at
``max_malformed_frames`` strikes. Two probe ops answer *before*
admission, so they work under overload and during drain:
``repro.ping`` (liveness, served by the service) and
``repro.health_request`` (front-end counters + drain status).

**Shutdown.** :meth:`FrontendServer.close` (and SIGINT/SIGTERM on the
``python -m repro.lbs.frontend`` entry point) is a drain ladder, the
process-level mirror of the backends' teardown ladder: the listener
stops, new frames are shed with ``overloaded`` while existing connections
stay readable, queued lanes flush, and in-flight work gets
``drain_deadline_s`` to finish and write its replies — then the ladder
escalates, cancelling whatever remains and closing the connections
regardless.

Single-loop discipline: all server state — lanes, pending counts, counters
— is touched only from the event-loop thread, so the front-end needs no
locks; the service's own counters remain lock-guarded as before.

:class:`ResilientClient` is the client-side complement: reconnect with a
seeded exponential backoff (a :class:`~repro.lbs.deferral
.TemporalTolerance` wait schedule), a per-request deadline budget, and
safe-to-retry classification by structured error code — what lets a load
generator or example client ride out injected network faults and server
restarts.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import signal
import socket
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import (
    DeadlineExceededError,
    OverloadedError,
    ProfileError,
    ReverseCloakError,
    WireFormatError,
)
from .deferral import TemporalTolerance
from .faults import Deadline, NetworkFaultInjector
from .framing import DEFAULT_MAX_FRAME_BYTES, FrameDecoder, encode_frame
from .service import AnonymizerService
from .wire import (
    CLOAK_REQUEST_FORMAT,
    DEANONYMIZE_REQUEST_FORMAT,
    HEALTH_FORMAT,
    HEALTH_REQUEST_FORMAT,
    PING_REQUEST_FORMAT,
    STATS_REQUEST_FORMAT,
    WIRE_VERSION,
    OutcomeDoc,
)

__all__ = [
    "FrontendServer",
    "FrontendClient",
    "ResilientClient",
    "RETRYABLE_ERROR_CODES",
    "main",
]

#: Socket read granularity of both ends.
_READ_CHUNK = 1 << 16

#: Errors a write/drain on a dying peer surfaces; never fatal to the server.
_PEER_ERRORS = (ConnectionError, TimeoutError, OSError, RuntimeError)


class _Connection:
    """Per-connection server state: the write end, the bounded pending
    count, the malformed-frame strike count, and the closed latch that
    makes late replies no-ops."""

    __slots__ = ("writer", "pending", "strikes", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.pending = 0
        self.strikes = 0
        self.closed = False


class FrontendServer:
    """Serve one :class:`AnonymizerService` over TCP (see module docs).

    Args:
        service: The service to expose. The server does not own it — the
            caller still closes it (the ``__main__`` entry point does).
        host/port: Bind address; port ``0`` picks an ephemeral port
            (available as :attr:`port` after :meth:`start`).
        batch_window_ms: How long a coalescing lane may wait for company
            after its first request, in milliseconds. ``0`` still
            coalesces whatever one event-loop pass delivers together.
        batch_max: Lane flush threshold — a lane holding this many
            requests flushes immediately.
        max_frame_bytes: Per-frame payload cap, both directions.
        max_pending: Global bound on admitted-but-unanswered requests.
        max_connection_pending: The same bound per connection.
        serve_threads: Width of the off-loop executor the blocking
            service calls run on. The default of 1 serializes engine work
            (correct for CPU-bound cloaking under the GIL); raise it only
            for backends that block without computing.
        idle_timeout_s: Close any connection that completes no frame for
            this long (``None`` — the embedded-server default — never
            times out; the console entry point defaults to 300 s).
            Trickling partial bytes does not reset the clock, but a
            connection with in-flight requests is never idle — the clock
            restarts while replies are owed.
        max_write_buffer_bytes: Per-connection write-backlog bound, both
            kernel- and app-side: ``SO_SNDBUF`` is capped to it, and a
            connection whose transport buffer exceeds it is evicted.
        drain_timeout_s: How long one connection's reply drain may block
            after a batch fan-out before the peer is declared stalled and
            evicted. Per connection — a stalled peer never delays the
            others' backpressure.
        max_malformed_frames: Malformed-frame strikes (bad JSON, bad
            envelope) a connection survives; each strike is still
            answered with a structured error before the last one closes
            the connection.
        drain_deadline_s: Default budget :meth:`close` gives in-flight
            work before escalating (cancelling it). Also the SIGTERM
            drain budget of the console entry point.
    """

    def __init__(
        self,
        service: AnonymizerService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window_ms: float = 2.0,
        batch_max: int = 64,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_pending: int = 1024,
        max_connection_pending: int = 256,
        serve_threads: int = 1,
        idle_timeout_s: Optional[float] = None,
        max_write_buffer_bytes: int = 1 << 20,
        drain_timeout_s: float = 5.0,
        max_malformed_frames: int = 8,
        drain_deadline_s: float = 10.0,
    ) -> None:
        if batch_max < 1:
            raise ProfileError(f"batch_max must be >= 1, got {batch_max}")
        if batch_window_ms < 0:
            raise ProfileError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        if max_pending < 1:
            raise ProfileError(f"max_pending must be >= 1, got {max_pending}")
        if max_connection_pending < 1:
            raise ProfileError(
                "max_connection_pending must be >= 1, "
                f"got {max_connection_pending}"
            )
        if serve_threads < 1:
            raise ProfileError(f"serve_threads must be >= 1, got {serve_threads}")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ProfileError(
                f"idle_timeout_s must be positive, got {idle_timeout_s}"
            )
        if max_write_buffer_bytes < 1:
            raise ProfileError(
                "max_write_buffer_bytes must be >= 1, "
                f"got {max_write_buffer_bytes}"
            )
        if drain_timeout_s <= 0:
            raise ProfileError(
                f"drain_timeout_s must be positive, got {drain_timeout_s}"
            )
        if max_malformed_frames < 1:
            raise ProfileError(
                f"max_malformed_frames must be >= 1, got {max_malformed_frames}"
            )
        if drain_deadline_s < 0:
            raise ProfileError(
                f"drain_deadline_s must be >= 0, got {drain_deadline_s}"
            )
        self._service = service
        self._host = host
        self._port = port
        self._batch_window_s = batch_window_ms / 1000.0
        self._batch_max = batch_max
        self._max_frame_bytes = max_frame_bytes
        self._max_pending = max_pending
        self._max_connection_pending = max_connection_pending
        self._serve_threads = serve_threads
        self._idle_timeout_s = idle_timeout_s
        self._max_write_buffer_bytes = max_write_buffer_bytes
        self._drain_timeout_s = drain_timeout_s
        self._max_malformed_frames = max_malformed_frames
        self._drain_deadline_s = drain_deadline_s
        # Lane item: (connection, request_id, request, deadline stamp);
        # the stamp is (budget_ms, arrival time) or None for the common
        # deadline-free request.
        self._lanes: Dict[
            str, List[Tuple[_Connection, Any, dict, Optional[Tuple[float, float]]]]
        ] = {
            "cloak": [],
            "peel": [],
        }
        self._lane_timers: Dict[str, Optional[asyncio.TimerHandle]] = {
            "cloak": None,
            "peel": None,
        }
        self._pending = 0
        self._busy = 0  # executor jobs in flight (adaptive-flush signal)
        self._tasks: Set[asyncio.Task] = set()
        self._handlers: Set[asyncio.Task] = set()
        self._connections: Set[_Connection] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = False
        # Counters (event-loop thread only; merged into stats replies).
        self._connections_total = 0
        self._frames_rejected = 0
        self._batches_coalesced = 0
        self._requests_shed = 0
        self._connections_evicted = 0
        self._idle_timeouts = 0
        self._expired_before_dispatch = 0
        self._malformed_frames = 0
        self._drained_inflight = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when created with 0)."""
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("frontend server is already started")
        self._loop = asyncio.get_running_loop()
        self._closing = False
        self._executor = ThreadPoolExecutor(
            max_workers=self._serve_threads,
            thread_name_prefix="reversecloak-frontend",
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("frontend server is not started")
        await self._server.serve_forever()

    async def close(self, drain_deadline_s: Optional[float] = None) -> None:
        """Drain and stop — the process-level teardown ladder.

        Rung by rung: the listener closes (no new connections), admission
        sheds every new frame with ``overloaded`` while existing
        connections stay readable, queued lanes flush, and in-flight work
        gets ``drain_deadline_s`` (default: the constructor's) to finish
        and write its replies. Work still running past the deadline is
        *cancelled* — its replies are abandoned, its clients see the
        connection close — because a wedged batch must not hold the
        process hostage. Idempotent. The wrapped service is *not* closed
        — its owner does that.
        """
        if self._server is None:
            return
        deadline_s = (
            self._drain_deadline_s if drain_deadline_s is None else drain_deadline_s
        )
        self._closing = True
        server, self._server = self._server, None
        server.close()
        for op in self._lanes:
            self._flush(op)
        deadline_at = self._loop.time() + deadline_s
        while self._tasks:
            remaining = deadline_at - self._loop.time()
            if remaining <= 0:
                break
            await asyncio.wait(set(self._tasks), timeout=remaining)
        escalated = bool(self._tasks)
        if escalated:
            # The drain deadline expired with work still in flight:
            # escalate. Cancelling the serving tasks abandons their
            # reply fan-out mid-air — the executor job itself cannot be
            # interrupted, so it is orphaned via cancel_futures below.
            for task in list(self._tasks):
                task.cancel()
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for conn in list(self._connections):
            conn.closed = True
            conn.writer.close()
        self._connections.clear()
        # Closing the transports EOFs the per-connection reader loops;
        # wait for the handlers to unwind on their own (3.12's
        # wait_closed would do this for us, 3.11's does not — and either
        # way the transports must close first or the wait deadlocks).
        while self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        await server.wait_closed()
        if self._executor is not None:
            executor, self._executor = self._executor, None
            # After escalation the executor may hold a wedged job; waiting
            # for it would defeat the deadline we just enforced.
            executor.shutdown(wait=not escalated, cancel_futures=escalated)

    async def __aenter__(self) -> "FrontendServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    def counters(self) -> dict:
        """The front-end's own counters (merged into ``repro.stats_request``
        replies served over the socket, returned verbatim by the
        ``repro.health_request`` op, namespaced ``frontend_*`` where a
        service counter of the same meaning exists).

        Lifecycle counters: ``connections_evicted`` counts every forcible
        disconnect (idle timeout, write-backlog bound, strike limit);
        ``idle_timeouts`` the subset evicted for idleness;
        ``malformed_frames`` the malformed-frame strikes (a subset of
        ``frames_rejected``, which also counts torn/oversized frames);
        ``expired_before_dispatch`` the requests shed with
        ``deadline_exceeded`` before reaching the executor;
        ``drained_inflight`` the in-flight replies completed while
        draining.
        """
        return {
            "connections": self._connections_total,
            "frames_rejected": self._frames_rejected,
            "batches_coalesced": self._batches_coalesced,
            "frontend_requests_shed": self._requests_shed,
            "frontend_pending": self._pending,
            "connections_evicted": self._connections_evicted,
            "idle_timeouts": self._idle_timeouts,
            "expired_before_dispatch": self._expired_before_dispatch,
            "malformed_frames": self._malformed_frames,
            "drained_inflight": self._drained_inflight,
        }

    # ------------------------------------------------------------------
    # connection plane
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closing:
            writer.close()
            return
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
            handler.add_done_callback(self._handlers.discard)
        self._connections_total += 1
        conn = _Connection(writer)
        self._connections.add(conn)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Cap (never grow) the kernel send buffer so a stalled
                # peer's backlog surfaces in the transport buffer, where
                # the max_write_buffer_bytes bound can see it.
                if (
                    sock.getsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF)
                    > self._max_write_buffer_bytes
                ):
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_SNDBUF,
                        self._max_write_buffer_bytes,
                    )
            except OSError:
                pass  # not a real socket (tests) or an exotic platform
        decoder = FrameDecoder(self._max_frame_bytes)
        last_frame_at = self._loop.time()
        try:
            # The loop runs even while draining: frames arriving then are
            # shed with ``overloaded`` by admission, and close() tears the
            # transport down when the drain finishes.
            while True:
                if self._idle_timeout_s is None:
                    data = await reader.read(_READ_CHUNK)
                else:
                    # Budget from the last *completed* frame, not the last
                    # byte: a peer trickling a frame forever (slow loris)
                    # runs out of budget like a silent one.
                    budget = self._idle_timeout_s - (
                        self._loop.time() - last_frame_at
                    )
                    if budget <= 0:
                        if conn.pending:
                            # A peer waiting on replies we owe it is not
                            # idle: restart the window, so slow serving
                            # cannot masquerade as peer idleness.
                            last_frame_at = self._loop.time()
                            continue
                        self._idle_timeouts += 1
                        self._evict(conn, abort=True)
                        break
                    try:
                        data = await asyncio.wait_for(
                            reader.read(_READ_CHUNK), budget
                        )
                    except asyncio.TimeoutError:
                        if conn.pending:
                            last_frame_at = self._loop.time()
                            continue
                        self._idle_timeouts += 1
                        self._evict(conn, abort=True)
                        break
                if not data:
                    if decoder.mid_frame:
                        # Truncated length prefix or mid-frame disconnect:
                        # nothing to answer (the peer is gone), but the
                        # event is visible in the counters.
                        self._frames_rejected += 1
                    break
                try:
                    frames = decoder.feed(data)
                except WireFormatError as exc:
                    # Oversized declaration. The stream cannot resync, so:
                    # one structured error frame, then drop the connection
                    # — the other clients never notice.
                    self._frames_rejected += 1
                    self._write_reply(
                        conn, None, OutcomeDoc.from_exception(exc).to_dict()
                    )
                    break
                if frames:
                    last_frame_at = self._loop.time()
                for payload in frames:
                    self._handle_frame(conn, payload)
                if conn.closed:
                    break  # evicted mid-burst (strike limit / backlog)
        except _PEER_ERRORS:
            pass  # peer vanished mid-read; replies still in flight no-op
        finally:
            conn.closed = True
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except _PEER_ERRORS:
                pass

    def _reject_malformed(
        self, conn: _Connection, request_id: Any, exc: WireFormatError
    ) -> None:
        """Answer one malformed frame and apply the strike ladder: a peer
        that keeps sending garbage is cut off at ``max_malformed_frames``
        (the final error reply still flushes — close, not abort)."""
        self._frames_rejected += 1
        self._malformed_frames += 1
        conn.strikes += 1
        self._write_reply(
            conn, request_id, OutcomeDoc.from_exception(exc).to_dict()
        )
        if conn.strikes >= self._max_malformed_frames:
            self._evict(conn, abort=False)

    def _handle_frame(self, conn: _Connection, payload: bytes) -> None:
        """Admit one frame: parse the envelope, shed or route (loop thread)."""
        try:
            frame = json.loads(payload)
        except ValueError as exc:
            self._reject_malformed(
                conn, None, WireFormatError(f"frame is not valid JSON: {exc}")
            )
            return
        if not isinstance(frame, dict):
            self._reject_malformed(
                conn,
                None,
                WireFormatError(
                    "frame must be a JSON object, "
                    f"got {type(frame).__name__}"
                ),
            )
            return
        request_id = frame.get("request_id")
        if isinstance(request_id, bool) or not isinstance(request_id, (str, int)):
            self._reject_malformed(
                conn,
                None,
                WireFormatError(
                    "frame carries no usable 'request_id' "
                    "(a JSON string or integer is required)"
                ),
            )
            return
        request = frame.get("request")
        deadline_ms = frame.get("deadline_ms")
        if (
            deadline_ms is not None
            and isinstance(request, dict)
            and request.get("deadline_ms") is None
        ):
            # Frame-level deadline propagates as the document default —
            # for batch documents this lands on the existing batch-level
            # default semantics (items with their own deadline keep it).
            request = dict(request)
            request["deadline_ms"] = deadline_ms
        kind = request.get("format") if isinstance(request, dict) else None
        if kind == PING_REQUEST_FORMAT or kind == HEALTH_REQUEST_FORMAT:
            # Probes answer *before* admission: liveness and drain status
            # must be observable exactly when the queues are full or the
            # server is draining — the moments a probe matters.
            if kind == PING_REQUEST_FORMAT:
                outcome = self._service.handle(request)
            else:
                outcome = {
                    "format": HEALTH_FORMAT,
                    "version": WIRE_VERSION,
                    "status": "draining" if self._closing else "ok",
                    "counters": self.counters(),
                }
            self._write_reply(conn, request_id, outcome)
            return
        if (
            self._closing
            or self._pending >= self._max_pending
            or conn.pending >= self._max_connection_pending
        ):
            self._requests_shed += 1
            self._write_reply(
                conn,
                request_id,
                OutcomeDoc.from_exception(
                    OverloadedError(
                        "front-end queue is full "
                        f"({self._pending}/{self._max_pending} pending, "
                        f"{conn.pending}/{self._max_connection_pending} on "
                        "this connection); shed — retry later"
                    )
                ).to_dict(),
            )
            return
        conn.pending += 1
        self._pending += 1
        stamp: Optional[Tuple[float, float]] = None
        if isinstance(request, dict):
            budget_ms = request.get("deadline_ms")
            if isinstance(budget_ms, (int, float)) and not isinstance(
                budget_ms, bool
            ):
                # Arrival stamp: dispatch subtracts the queue/coalesce
                # wait from this budget (end-to-end deadline semantics).
                stamp = (float(budget_ms), self._loop.time())
        if kind == CLOAK_REQUEST_FORMAT:
            self._enqueue("cloak", conn, request_id, request, stamp)
        elif kind == DEANONYMIZE_REQUEST_FORMAT:
            self._enqueue("peel", conn, request_id, request, stamp)
        elif kind == STATS_REQUEST_FORMAT:
            # Served on the loop thread: stats must merge the front-end
            # counters, which only this thread may read consistently. The
            # stats request releases its own admission slot *before* the
            # counters are read, so ``frontend_pending`` reports only the
            # other requests in flight.
            outcome = self._service.handle(request)
            conn.pending -= 1
            self._pending -= 1
            counters = outcome.get("counters")
            if isinstance(counters, dict):
                counters.update(self.counters())
            self._write_reply(conn, request_id, outcome)
        else:
            # Everything else — reversal *batch* documents, unknown
            # formats — serves individually off-loop, one task each.
            self._busy += 1
            self._spawn(self._run_single(conn, request_id, request, stamp))

    # ------------------------------------------------------------------
    # coalescing lanes
    # ------------------------------------------------------------------
    # Batching is adaptive: ``batch_window_ms`` and ``batch_max`` are
    # *upper bounds* on added latency and batch size, but while the
    # serving executor is busy with an earlier batch a lane simply keeps
    # accumulating (nothing could serve it sooner anyway), and the moment
    # the executor drains, whatever accumulated flushes at once. Under
    # light load this degenerates to the plain window/threshold scheme
    # (small batches, window-bounded latency); at saturation batches grow
    # to ``batch_max`` automatically, which is what amortizes a process
    # pool's per-dispatch cost and moves the open-loop saturation plateau
    # up to the closed-loop batch rate (see ``benchmarks/bench_frontend``).

    def _enqueue(
        self,
        op: str,
        conn: _Connection,
        request_id: Any,
        request: dict,
        stamp: Optional[Tuple[float, float]],
    ) -> None:
        lane = self._lanes[op]
        lane.append((conn, request_id, request, stamp))
        if len(lane) >= self._batch_max:
            self._flush(op)
        elif self._busy == 0 and self._lane_timers[op] is None:
            self._lane_timers[op] = self._loop.call_later(
                self._batch_window_s, self._flush, op
            )

    def _flush(self, op: str) -> None:
        timer = self._lane_timers[op]
        if timer is not None:
            timer.cancel()
            self._lane_timers[op] = None
        items = self._lanes[op]
        if not items:
            return
        self._lanes[op] = []
        self._batches_coalesced += 1
        self._busy += 1
        self._spawn(self._run_batch(items))

    def _after_job(self) -> None:
        """Executor-drain hook: flush what accumulated while it was busy."""
        self._busy -= 1
        if self._busy == 0 and not self._closing:
            for op in self._lanes:
                if self._lanes[op]:
                    self._flush(op)

    def _spawn(self, coro) -> None:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _reap_expired(
        self,
        items: List[Tuple[_Connection, Any, dict, Optional[Tuple[float, float]]]],
    ) -> List[Tuple[_Connection, Any, dict]]:
        """Deadline propagation at the dispatch boundary (loop thread).

        For every stamped item, subtract the time spent queued/coalesced
        from its budget: an already-expired request is answered with
        ``deadline_exceeded`` here — the executor never sees it — and a
        live one is forwarded with only its *remaining* budget as
        ``deadline_ms``, so the engine's cooperative deadline measures
        end-to-end time.
        """
        now = self._loop.time()
        live: List[Tuple[_Connection, Any, dict]] = []
        for conn, request_id, request, stamp in items:
            if stamp is not None:
                budget_ms, arrival = stamp
                waited_ms = (now - arrival) * 1000.0
                remaining_ms = budget_ms - waited_ms
                if remaining_ms <= 0.0:
                    self._expired_before_dispatch += 1
                    self._finish(
                        conn,
                        request_id,
                        OutcomeDoc.from_exception(
                            DeadlineExceededError(
                                f"deadline of {budget_ms:g} ms expired "
                                f"after {waited_ms:.1f} ms in the "
                                "front-end queue"
                            )
                        ).to_dict(),
                    )
                    continue
                request = dict(request)
                request["deadline_ms"] = remaining_ms
            live.append((conn, request_id, request))
        return live

    async def _run_batch(
        self,
        items: List[Tuple[_Connection, Any, dict, Optional[Tuple[float, float]]]],
    ) -> None:
        touched = {conn for conn, _, _, _ in items}
        live = self._reap_expired(items)
        if not live:
            # Every item expired in the queue: nothing to dispatch, but
            # the busy count and the write backpressure still apply.
            self._after_job()
            await self._drain_writers(touched)
            return
        documents = [request for _, _, request in live]
        try:
            outcomes = await self._loop.run_in_executor(
                self._executor, self._service.handle_batch, documents
            )
        except asyncio.CancelledError:
            # Drain escalation: the fan-out is abandoned wholesale, and
            # the task must report cancelled, not done.
            raise
        except Exception as exc:  # the front-end outlives any request
            outcome = OutcomeDoc.from_exception(exc).to_dict()
            outcomes = [dict(outcome) for _ in live]
        finally:
            self._after_job()
        for (conn, request_id, _), outcome in zip(live, outcomes):
            self._finish(conn, request_id, outcome)
        await self._drain_writers(touched)

    async def _run_single(
        self,
        conn: _Connection,
        request_id: Any,
        request,
        stamp: Optional[Tuple[float, float]] = None,
    ) -> None:
        live = self._reap_expired([(conn, request_id, request, stamp)])
        if not live:
            self._after_job()
            await self._drain_writers((conn,))
            return
        _, _, request = live[0]
        try:
            outcome = await self._loop.run_in_executor(
                self._executor, self._service.handle, request
            )
        except asyncio.CancelledError:
            raise  # drain escalation; see _run_batch
        except Exception as exc:  # the front-end outlives any request
            outcome = OutcomeDoc.from_exception(exc).to_dict()
        finally:
            self._after_job()
        self._finish(conn, request_id, outcome)
        await self._drain_writers((conn,))

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------
    def _finish(self, conn: _Connection, request_id: Any, outcome: dict) -> None:
        """Release one admitted request and write its reply."""
        conn.pending -= 1
        self._pending -= 1
        if self._closing:
            self._drained_inflight += 1
        self._write_reply(conn, request_id, outcome)

    def _write_reply(
        self, conn: _Connection, request_id: Any, outcome: dict
    ) -> None:
        if conn.closed:
            return
        payload = json.dumps(
            {"request_id": request_id, "outcome": outcome},
            separators=(",", ":"),
        )
        try:
            frame = encode_frame(payload, self._max_frame_bytes)
        except WireFormatError as exc:
            # The outcome itself is too big for the frame limit: degrade
            # to a (small) structured error so the client is not starved.
            frame = encode_frame(
                json.dumps(
                    {
                        "request_id": request_id,
                        "outcome": OutcomeDoc.from_exception(exc).to_dict(),
                    },
                    separators=(",", ":"),
                ),
                self._max_frame_bytes,
            )
        try:
            conn.writer.write(frame)
        except _PEER_ERRORS:
            conn.closed = True
            return
        if (
            conn.writer.transport.get_write_buffer_size()
            > self._max_write_buffer_bytes
        ):
            # The peer stopped reading and its backlog blew the bound:
            # evict now rather than buffer without limit. (SO_SNDBUF is
            # capped to the same bound, so kernel + app backlog together
            # stay within a small multiple of it.)
            self._evict(conn, abort=True)

    def _evict(self, conn: _Connection, *, abort: bool) -> None:
        """Forcibly disconnect a misbehaving peer (idle timeout, write
        backlog, strike limit). ``abort`` drops buffered replies on the
        floor — right for a peer that is not reading; strike evictions
        close instead, so the final error reply still flushes."""
        if conn.closed:
            return
        conn.closed = True
        self._connections_evicted += 1
        self._connections.discard(conn)
        if abort:
            transport = conn.writer.transport
            if transport is not None:
                transport.abort()
        else:
            conn.writer.close()

    async def _drain_writers(self, conns) -> None:
        """Apply write backpressure after a burst of replies.

        Per connection and bounded: every writer drains *concurrently*,
        each given at most ``drain_timeout_s`` to sink below the
        flow-control high-water mark, so one stalled peer can neither
        wedge this serving task forever nor hold up the backpressure of
        the batch's other connections. A writer still clogged past the
        bound marks a peer that stopped reading — evicted; its replies
        were already written and are abandoned with the transport.
        """
        waiters = [
            self._drain_one(conn) for conn in conns if not conn.closed
        ]
        if waiters:
            await asyncio.gather(*waiters)

    async def _drain_one(self, conn: _Connection) -> None:
        try:
            await asyncio.wait_for(conn.writer.drain(), self._drain_timeout_s)
        except asyncio.TimeoutError:
            self._evict(conn, abort=True)
        except _PEER_ERRORS:
            conn.closed = True


def _scan_request_id(payload: bytes) -> Optional[int]:
    """Cheap integer ``request_id`` extraction from a compact reply frame.

    The server emits ``{"request_id":<id>,...}`` with the id first, so a
    client that only ever issues integer ids (this one) can demultiplex
    without parsing the whole outcome — the open-loop bench measures the
    socket, not ``json.loads``. Anything unexpected returns ``None`` and
    the caller falls back to a full parse.
    """
    prefix = b'{"request_id":'
    if not payload.startswith(prefix):
        return None
    cut = payload.find(b",", len(prefix))
    if cut < 0:
        cut = payload.find(b"}", len(prefix))
    if cut < 0:
        return None
    try:
        return int(payload[len(prefix) : cut])
    except ValueError:
        return None


class FrontendClient:
    """Asyncio client of the front-end: framing plus request multiplexing.

    Any number of requests may be in flight; the background reader task
    resolves each returned future from the reply's echoed ``request_id``.
    One event loop only (not thread-safe) — run several clients for
    several loops.

    Replies the client cannot attribute — the server answers rejected
    frames with ``request_id: null`` — accumulate in :attr:`unmatched`
    (bounded) instead of being dropped silently.
    """

    _UNMATCHED_KEPT = 32

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        # request_id -> (future-or-callback, raw, is_callback); entries are
        # popped as replies land, so the map's size is exactly the requests
        # currently in flight.
        self._pending: Dict[Any, Tuple[Any, bool, bool]] = {}
        self._unmatched: List[dict] = []
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "FrontendClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes)

    async def __aenter__(self) -> "FrontendClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    @property
    def unmatched(self) -> List[dict]:
        """Recent reply frames with no in-flight ``request_id`` (copies)."""
        return list(self._unmatched)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def submit(
        self,
        document: dict,
        *,
        deadline_ms: Optional[float] = None,
        raw: bool = False,
    ) -> "asyncio.Future":
        """Send one request document; the future resolves to its outcome
        document (or, with ``raw``, to the undecoded reply payload bytes —
        the bench's fast path)."""
        request_id = next(self._ids)
        frame: dict = {"request_id": request_id, "request": document}
        if deadline_ms is not None:
            frame["deadline_ms"] = deadline_ms
        return self._submit(
            request_id, json.dumps(frame, separators=(",", ":")), raw
        )

    def submit_encoded(
        self,
        encoded_request: str,
        *,
        raw: bool = False,
        on_reply: Optional[Callable] = None,
    ):
        """:meth:`submit` for a pre-encoded request document (the open-loop
        bench encodes each distinct document once, then sends it thousands
        of times — the frame is assembled by concatenation).

        With ``on_reply``, no future is created at all: the callable is
        invoked synchronously from the reader task with the reply (the raw
        payload bytes under ``raw``, the outcome document otherwise), and
        ``submit_encoded`` returns ``None``. This is the load-generator
        mode — per-request futures and their ``call_soon`` resolution
        machinery cost real CPU at tens of thousands of requests, which on
        a shared benchmark box is charged against the server. If the
        connection dies before the reply arrives, ``on_reply`` receives
        ``None``.
        """
        request_id = next(self._ids)
        payload = '{"request_id":%d,"request":%s}' % (request_id, encoded_request)
        return self._submit(request_id, payload, raw, on_reply)

    def _submit(
        self,
        request_id: int,
        payload: str,
        raw: bool,
        on_reply: Optional[Callable] = None,
    ):
        if self._closed:
            raise ConnectionError("frontend client is closed")
        if self._reader_task.done():
            # The reply stream already ended (server gone, reset, bad
            # frame): a write here would be silently swallowed by the dead
            # transport and the future would never resolve. Fail fast —
            # ResilientClient turns this into a reconnect.
            raise ConnectionError("frontend connection is no longer readable")
        if on_reply is not None:
            self._pending[request_id] = (on_reply, raw, True)
            future = None
        else:
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = (future, raw, False)
        try:
            self._writer.write(encode_frame(payload, self._max_frame_bytes))
        except Exception:
            self._pending.pop(request_id, None)
            raise
        return future

    async def request(
        self, document: dict, *, deadline_ms: Optional[float] = None
    ) -> dict:
        """Send one request and await its outcome document."""
        return await self.submit(document, deadline_ms=deadline_ms)

    async def stats(self) -> dict:
        """The server's merged counters (service + front-end)."""
        outcome = await self.request(
            {"format": STATS_REQUEST_FORMAT, "version": WIRE_VERSION}
        )
        return outcome

    async def drain(self) -> None:
        await self._writer.drain()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    async def _read_replies(self) -> None:
        decoder = FrameDecoder(self._max_frame_bytes)
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    self._fail_pending(
                        ConnectionError("server closed the connection")
                    )
                    return
                for payload in decoder.feed(data):
                    self._on_reply(payload)
        except (WireFormatError, *(_PEER_ERRORS)) as exc:
            self._fail_pending(ConnectionError(f"reply stream broke: {exc!r}"))

    def _on_reply(self, payload: bytes) -> None:
        request_id = _scan_request_id(payload)
        entry = (
            self._pending.pop(request_id, None) if request_id is not None else None
        )
        if entry is not None and entry[1]:
            if entry[2]:
                entry[0](payload)
            elif not entry[0].done():
                entry[0].set_result(payload)
            return
        try:
            frame = json.loads(payload)
        except ValueError:
            frame = None
        if not isinstance(frame, dict):
            if entry is None:
                self._note_unmatched(
                    {"outcome": None, "raw": payload.decode("utf-8", "replace")}
                )
            elif entry[2]:
                entry[0](None)
            elif not entry[0].done():
                entry[0].set_exception(
                    WireFormatError("reply frame is not a JSON object")
                )
            return
        if entry is None:
            reply_id = frame.get("request_id")
            entry = (
                self._pending.pop(reply_id, None) if reply_id is not None else None
            )
        if entry is None:
            self._note_unmatched(frame)
            return
        target, raw, is_callback = entry
        if is_callback:
            target(payload if raw else frame.get("outcome"))
        elif not target.done():
            target.set_result(payload if raw else frame.get("outcome"))

    def _note_unmatched(self, frame: dict) -> None:
        self._unmatched.append(frame)
        del self._unmatched[: -self._UNMATCHED_KEPT]

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for target, _raw, is_callback in pending.values():
            if is_callback:
                target(None)
            elif not target.done():
                target.set_exception(exc)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            if not self._reader_task.cancelled():
                # The cancellation is close()'s own, not the reader's we
                # just requested: propagate it.
                raise
        except Exception:
            pass
        self._fail_pending(ConnectionError("frontend client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except _PEER_ERRORS:
            pass


#: Structured error codes a :class:`ResilientClient` may transparently
#: retry: the request was shed before execution (``overloaded``) or its
#: worker died before producing a result (``worker_crashed``) — re-sending
#: cannot double-apply anything. Codes like ``malformed_document`` or
#: ``tolerance_exceeded`` would fail identically on every retry and are
#: surfaced immediately.
RETRYABLE_ERROR_CODES = frozenset({"overloaded", "worker_crashed"})


class ResilientClient:
    """A self-healing front-end client: reconnect, bounded retry, budget.

    Wire faults — the connection dying mid-request, the server
    restarting, admission shedding under load — surface from
    :class:`FrontendClient` as ``ConnectionError`` or structured
    retryable outcomes. This wrapper absorbs them:

    * **Reconnect with seeded exponential backoff.** The wait sequence is
      ``tolerance.wait_schedule()`` — the same deterministic,
      jitter-seeded schedule temporal deferral uses — so two runs of a
      faulted scenario retry at identical instants.
    * **Safe-to-retry classification.** Transport failures are always
      retried (every wire format the service exposes is stateless and
      idempotent); structured errors are retried only when their code is
      in ``retryable_codes`` (default :data:`RETRYABLE_ERROR_CODES`).
      Anything else comes back immediately — retrying a malformed
      document would fail the same way forever.
    * **Per-request deadline budget.** ``deadline_ms`` bounds the whole
      attempt loop — connect, send, await, every backoff wait — and the
      *remaining* budget travels as the frame deadline, so the server
      sheds work this client has already given up on. Exhaustion returns
      a structured ``deadline_exceeded`` outcome, never a hang.

    ``fault_injector`` threads a :class:`~repro.lbs.faults
    .NetworkFaultInjector` into the send path for deterministic testing:
    a matching ``drop_connection`` action aborts the live transport just
    before that request, exactly the fault this class exists to survive.
    (The byte-mangling kinds belong to
    :class:`~repro.lbs.faults.FaultyConnection` — a resilient client
    never sends broken bytes on purpose.)

    One event loop only, like :class:`FrontendClient`. Not a connection
    pool: requests share one connection, re-established on demand.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tolerance: Optional[TemporalTolerance] = None,
        retryable_codes: frozenset = RETRYABLE_ERROR_CODES,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        fault_injector: Optional[NetworkFaultInjector] = None,
        connection_index: int = 0,
    ) -> None:
        self._host = host
        self._port = port
        self._tolerance = tolerance or TemporalTolerance(
            max_defer_seconds=5.0,
            retry_interval_seconds=0.05,
            backoff_factor=2.0,
            jitter_fraction=0.25,
            jitter_seed=20170605,
        )
        self._retryable_codes = retryable_codes
        self._max_frame_bytes = max_frame_bytes
        self._injector = fault_injector
        self._connection_index = connection_index
        self._frame_ordinal = 0
        self._client: Optional[FrontendClient] = None
        self._closed = False
        #: Connections re-established after a failure (counter).
        self.reconnects = 0
        #: Requests re-sent after a retryable failure (counter).
        self.retries = 0

    async def __aenter__(self) -> "ResilientClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def _ensure_client(self) -> FrontendClient:
        if self._client is None:
            client = await FrontendClient.connect(
                self._host, self._port, self._max_frame_bytes
            )
            self._client = client
            if self.reconnects or self._frame_ordinal:
                self.reconnects += 1
        return self._client

    async def _discard_client(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    @staticmethod
    def _error_code(outcome) -> Optional[str]:
        if not isinstance(outcome, dict) or outcome.get("status") != "error":
            return None
        error = outcome.get("error")
        return error.get("code") if isinstance(error, dict) else None

    async def request(
        self, document: dict, *, deadline_ms: Optional[float] = None
    ) -> dict:
        """Send one request document and return its outcome document,
        retrying across connection loss and retryable error codes within
        the backoff schedule and the optional ``deadline_ms`` budget."""
        if self._closed:
            raise ConnectionError("resilient client is closed")
        deadline = Deadline.start(deadline_ms)
        schedule = self._tolerance.wait_schedule()
        attempt = 0
        while True:
            failure: Any = None
            remaining_s = deadline.remaining_s()
            if remaining_s is not None and remaining_s <= 0:
                return self._deadline_outcome(deadline_ms)
            try:
                client = await self._ensure_client()
                if self._injector is not None:
                    action = self._injector.take(
                        self._connection_index, self._frame_ordinal
                    )
                    if action is not None and action.kind == "drop_connection":
                        # Scripted mid-stream connection loss: the abort
                        # fails this request's future, which is exactly
                        # the reconnect path under test.
                        client._writer.transport.abort()
                self._frame_ordinal += 1
                budget_ms = (
                    None if remaining_s is None else remaining_s * 1000.0
                )
                future = client.submit(document, deadline_ms=budget_ms)
                if remaining_s is None:
                    outcome = await future
                else:
                    outcome = await asyncio.wait_for(future, remaining_s)
            except asyncio.TimeoutError:
                # Budget exhausted awaiting the reply. The reply may yet
                # arrive; a fresh connection is the only consistent state.
                await self._discard_client()
                return self._deadline_outcome(deadline_ms)
            except (WireFormatError, *_PEER_ERRORS) as exc:
                await self._discard_client()
                failure = exc
            else:
                code = self._error_code(outcome)
                if code not in self._retryable_codes:
                    return outcome
                failure = outcome
            if attempt >= len(schedule) or deadline.expired:
                if isinstance(failure, dict):
                    return failure  # the last structured (retryable) error
                raise ConnectionError(
                    f"request failed after {attempt} retries: {failure!r}"
                )
            wait_s = schedule[attempt]
            remaining_s = deadline.remaining_s()
            if remaining_s is not None:
                wait_s = min(wait_s, max(0.0, remaining_s))
            await asyncio.sleep(wait_s)
            self.retries += 1
            attempt += 1

    @staticmethod
    def _deadline_outcome(deadline_ms: Optional[float]) -> dict:
        return OutcomeDoc.from_exception(
            DeadlineExceededError(
                f"deadline of {deadline_ms:g} ms exhausted before a "
                "front-end reply arrived"
            )
        ).to_dict()

    async def stats(self) -> dict:
        return await self.request(
            {"format": STATS_REQUEST_FORMAT, "version": WIRE_VERSION}
        )

    async def health(self) -> dict:
        return await self.request(
            {"format": HEALTH_REQUEST_FORMAT, "version": WIRE_VERSION}
        )

    async def close(self) -> None:
        self._closed = True
        await self._discard_client()


# ----------------------------------------------------------------------
# console entry point
# ----------------------------------------------------------------------
def _build_backend(args):
    from .backends import InlineBackend, ProcessPoolBackend, ThreadPoolBackend

    if args.backend == "inline":
        return InlineBackend()
    if args.backend == "thread":
        return ThreadPoolBackend(args.workers)
    return ProcessPoolBackend(args.workers, start_method=args.start_method)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lbs.frontend",
        description=(
            "Serve the ReverseCloak anonymizer over TCP "
            "(length-prefixed JSON frames; see repro.lbs.frontend docs). "
            "Serves a synthetic grid map with a uniform population — the "
            "demo/bench deployment; embed FrontendServer for real maps."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="0 picks an ephemeral port, printed on the FRONTEND_READY line",
    )
    parser.add_argument(
        "--backend",
        choices=("inline", "thread", "process"),
        default="inline",
        help="execution backend the coalesced batches run on",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="thread/process pool width"
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method of the process backend",
    )
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--batch-max", type=int, default=64)
    parser.add_argument("--max-pending", type=int, default=1024)
    parser.add_argument("--max-connection-pending", type=int, default=256)
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=300.0,
        help=(
            "evict connections that complete no frame for this long; "
            "0 disables the timeout"
        ),
    )
    parser.add_argument(
        "--drain-deadline-s",
        type=float,
        default=10.0,
        help=(
            "how long SIGTERM/SIGINT lets in-flight requests finish "
            "before escalating"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="service-level admission budget (default: unbounded)",
    )
    parser.add_argument(
        "--grid-side", type=int, default=24, help="side of the demo grid map"
    )
    parser.add_argument(
        "--users-per-segment", type=int, default=2, help="demo population density"
    )
    return parser


async def _serve(args, service: AnonymizerService) -> None:
    server = FrontendServer(
        service,
        args.host,
        args.port,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        max_pending=args.max_pending,
        max_connection_pending=args.max_connection_pending,
        idle_timeout_s=args.idle_timeout_s or None,
        drain_deadline_s=args.drain_deadline_s,
    )
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    # Signal handlers are installed *before* the readiness line: a
    # supervisor that signals as soon as it reads the line must land on
    # the drain path, never on a default KeyboardInterrupt.
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    # Machine-parseable readiness line first (the example client and the
    # tests wait for it), human summary second.
    print(f"FRONTEND_READY {server.host} {server.port}", flush=True)
    print(
        f"serving a {args.grid_side}x{args.grid_side} grid on the "
        f"{args.backend} backend at {server.host}:{server.port} "
        f"(batch window {args.batch_window_ms:g} ms, batch max "
        f"{args.batch_max}); SIGINT/SIGTERM drains and exits",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        print("draining in-flight batches...", flush=True)
        await server.close()
        counters = server.counters()
        print(
            f"served {counters['connections']} connection(s), "
            f"{counters['batches_coalesced']} coalesced batch(es); bye",
            flush=True,
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ..mobility.snapshot import PopulationSnapshot
    from ..roadnet.generators import grid_network

    args = _parser().parse_args(argv)
    network = grid_network(args.grid_side, args.grid_side)
    snapshot = PopulationSnapshot.from_counts(
        {
            segment_id: args.users_per_segment
            for segment_id in network.segment_ids()
        }
    )
    service = AnonymizerService(
        network, backend=_build_backend(args), max_inflight=args.max_inflight
    )
    service.update_snapshot(snapshot)
    try:
        asyncio.run(_serve(args, service))
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
