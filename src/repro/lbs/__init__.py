"""LBS substrate: anonymization service (wire protocol + execution
backends), provider, anonymous query processing, temporal deferral and
continuous cloaking."""

from .backends import (
    BackendSpec,
    BatchOutcome,
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    ReversalEngineCache,
    ReversalOutcome,
    ThreadPoolBackend,
)
from .continuous import CloakTimeline, ContinuousCloaker, TimelineEntry
from .deferral import DeferredCloaking, DeferredResult, TemporalTolerance
from .faults import FAULT_PLAN_ENV, Deadline, FaultAction, FaultInjector, FaultPlan
from .provider import LBSProvider
from .query import CandidateResult, PoiDirectory, PointOfInterest, range_query
from .server import TrustedAnonymizer
from .service import AnonymizerService
from .wire import (
    BatchOutcomeDoc,
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
)

__all__ = [
    "AnonymizerService",
    "TrustedAnonymizer",
    "CloakRequest",
    "BatchOutcome",
    "ReversalOutcome",
    "ReversalEngineCache",
    "CloakRequestDoc",
    "DeanonymizeRequestDoc",
    "DeanonymizeBatchDoc",
    "OutcomeDoc",
    "BatchOutcomeDoc",
    "ExecutionBackend",
    "BackendSpec",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "LBSProvider",
    "PoiDirectory",
    "PointOfInterest",
    "CandidateResult",
    "range_query",
    "TemporalTolerance",
    "DeferredCloaking",
    "DeferredResult",
    "ContinuousCloaker",
    "CloakTimeline",
    "TimelineEntry",
    "Deadline",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FAULT_PLAN_ENV",
]
