"""LBS substrate: anonymization service (wire protocol + execution
backends), provider, anonymous query processing, temporal deferral and
continuous cloaking."""

from .backends import (
    BackendSpec,
    BatchOutcome,
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    ReversalEngineCache,
    ReversalOutcome,
    ThreadPoolBackend,
)
from .continuous import CloakTimeline, ContinuousCloaker, TimelineEntry
from .deferral import DeferredCloaking, DeferredResult, TemporalTolerance
from .faults import (
    FAULT_PLAN_ENV,
    NETWORK_FAULT_KINDS,
    Deadline,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultyConnection,
    NetworkFaultInjector,
)
from .framing import DEFAULT_MAX_FRAME_BYTES, FrameDecoder, encode_frame
from .provider import LBSProvider
from .query import CandidateResult, PoiDirectory, PointOfInterest, range_query
from .server import TrustedAnonymizer
from .service import AnonymizerService
from .wire import (
    BatchOutcomeDoc,
    CloakRequest,
    CloakRequestDoc,
    DeanonymizeBatchDoc,
    DeanonymizeRequestDoc,
    OutcomeDoc,
)

__all__ = [
    "AnonymizerService",
    "TrustedAnonymizer",
    "CloakRequest",
    "BatchOutcome",
    "ReversalOutcome",
    "ReversalEngineCache",
    "CloakRequestDoc",
    "DeanonymizeRequestDoc",
    "DeanonymizeBatchDoc",
    "OutcomeDoc",
    "BatchOutcomeDoc",
    "ExecutionBackend",
    "BackendSpec",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "LBSProvider",
    "PoiDirectory",
    "PointOfInterest",
    "CandidateResult",
    "range_query",
    "TemporalTolerance",
    "DeferredCloaking",
    "DeferredResult",
    "ContinuousCloaker",
    "CloakTimeline",
    "TimelineEntry",
    "Deadline",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultyConnection",
    "NetworkFaultInjector",
    "NETWORK_FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FrameDecoder",
    "encode_frame",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrontendServer",
    "FrontendClient",
    "ResilientClient",
]


def __getattr__(name: str):
    # The front-end is imported lazily (PEP 562) so that
    # ``python -m repro.lbs.frontend`` does not import the module twice
    # (once here, once as ``__main__`` — runpy warns about exactly that).
    if name in ("FrontendServer", "FrontendClient", "ResilientClient"):
        from . import frontend

        return getattr(frontend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
