"""LBS substrate: trusted anonymizer, provider, anonymous query processing,
temporal deferral and continuous cloaking."""

from .continuous import CloakTimeline, ContinuousCloaker, TimelineEntry
from .deferral import DeferredCloaking, DeferredResult, TemporalTolerance
from .provider import LBSProvider
from .query import CandidateResult, PoiDirectory, PointOfInterest, range_query
from .server import BatchOutcome, CloakRequest, TrustedAnonymizer

__all__ = [
    "TrustedAnonymizer",
    "CloakRequest",
    "BatchOutcome",
    "LBSProvider",
    "PoiDirectory",
    "PointOfInterest",
    "CandidateResult",
    "range_query",
    "TemporalTolerance",
    "DeferredCloaking",
    "DeferredResult",
    "ContinuousCloaker",
    "CloakTimeline",
    "TimelineEntry",
]
