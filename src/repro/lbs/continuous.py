"""Continuous cloaking: protecting a *moving* user across snapshots.

A mobile user requests location-based service repeatedly; each request is
cloaked against the population of its moment. Re-cloaking independently per
tick is the natural policy — and also the classically vulnerable one: an
adversary who links the envelopes of one pseudonym can intersect the
candidate user sets across ticks (see
:mod:`repro.attacks.intersection`). This module provides:

* :class:`ContinuousCloaker` — the per-tick re-cloaking pipeline for one
  user: fresh keys per tick (forward security: yesterday's requester keys
  do not open today's cloaks) or a fixed chain (so long-lived grants keep
  working), both measured by experiment E15;
* :class:`CloakTimeline` — the produced sequence of (time, envelope,
  snapshot) records, which is also exactly the adversary's observation in
  the intersection-attack experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import CloakingError, MobilityError
from ..keys.keys import KeyChain
from ..mobility.simulator import TrafficSimulator
from ..mobility.snapshot import PopulationSnapshot

__all__ = ["TimelineEntry", "CloakTimeline", "ContinuousCloaker"]


@dataclass(frozen=True)
class TimelineEntry:
    """One tick of a continuous cloak.

    Attributes:
        time: Simulation time of the request.
        envelope: The published cloak (``None`` when this tick's request
            failed and ``skip_failures`` was set).
        snapshot: The population the cloak was computed against.
        chain: The key chain used this tick (fresh-keys mode rotates it).
    """

    time: float
    envelope: Optional[CloakEnvelope]
    snapshot: PopulationSnapshot
    chain: KeyChain


class CloakTimeline:
    """The ordered cloak stream of one pseudonym."""

    def __init__(self, user_id: int, entries: Sequence[TimelineEntry]) -> None:
        self._user_id = user_id
        self._entries: Tuple[TimelineEntry, ...] = tuple(entries)

    @property
    def user_id(self) -> int:
        return self._user_id

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entry(self, index: int) -> TimelineEntry:
        return self._entries[index]

    def successful_entries(self) -> Tuple[TimelineEntry, ...]:
        """Entries whose request produced an envelope."""
        return tuple(e for e in self._entries if e.envelope is not None)

    def success_rate(self) -> float:
        if not self._entries:
            return 0.0
        return len(self.successful_entries()) / len(self._entries)


class ContinuousCloaker:
    """Re-cloak one user at a fixed cadence while traffic evolves.

    Args:
        engine: The cloaking engine.
        simulator: The shared traffic simulation (advanced by :meth:`run`).
        profile: The user's multi-level privacy profile (constant across
            ticks, like the demo GUI's saved settings).
        fresh_keys: Rotate the key chain every tick (forward security) or
            reuse one chain for the whole timeline.
    """

    def __init__(
        self,
        engine: ReverseCloakEngine,
        simulator: TrafficSimulator,
        profile: PrivacyProfile,
        fresh_keys: bool = True,
    ) -> None:
        if engine.network is not simulator.network:
            raise MobilityError(
                "engine and simulator must share the same road network"
            )
        self._engine = engine
        self._simulator = simulator
        self._profile = profile
        self._fresh_keys = fresh_keys
        self._fixed_chain: Optional[KeyChain] = (
            None if fresh_keys else KeyChain.generate(profile.level_count)
        )

    def run(
        self,
        user_id: int,
        ticks: int,
        interval_seconds: float = 5.0,
        skip_failures: bool = True,
    ) -> CloakTimeline:
        """Produce ``ticks`` cloaks for ``user_id``, one per interval.

        Args:
            user_id: The tracked user (must exist in the simulation when
                the run starts — a missing user at tick 0 is a caller
                error and always raises).
            ticks: Number of cloaking requests.
            interval_seconds: Simulated time between requests.
            skip_failures: Record failed requests as ``None`` entries
                instead of raising (an LBS keeps serving the stream). This
                covers the user *leaving the simulation* mid-run too — a
                despawned tick is a failed request like any other, not a
                reason to lose the whole timeline.
        """
        if ticks < 1:
            raise MobilityError(f"ticks must be >= 1, got {ticks}")
        if interval_seconds <= 0:
            raise MobilityError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        entries: List[TimelineEntry] = []
        for tick in range(ticks):
            if tick > 0:
                self._simulator.step(interval_seconds)
            snapshot = self._simulator.snapshot()
            chain = (
                KeyChain.generate(self._profile.level_count)
                if self._fresh_keys
                else self._fixed_chain
            )
            assert chain is not None
            envelope: Optional[CloakEnvelope]
            try:
                if not snapshot.has_user(user_id):
                    raise MobilityError(f"user {user_id} not in the simulation")
                envelope = self._engine.anonymize(
                    snapshot.segment_of(user_id), snapshot, self._profile, chain
                )
            except (CloakingError, MobilityError):
                # Tick 0 absence is a bad user_id, not a transient serving
                # failure: a run that never observed the user raises even
                # with skip_failures, exactly as before the despawn fix.
                if not skip_failures or (
                    tick == 0 and not snapshot.has_user(user_id)
                ):
                    raise
                envelope = None
            entries.append(
                TimelineEntry(
                    time=self._simulator.time,
                    envelope=envelope,
                    snapshot=snapshot,
                    chain=chain,
                )
            )
        return CloakTimeline(user_id, entries)
