"""Anonymous range-query processing over cloaked regions.

The paper motivates the spatial tolerance by its "direct influence on the
performance of the anonymous query processing technique [7], [9]": an LBS
serving a cloaked user must return a *candidate result set* valid for every
possible user position inside the region, and the candidate set grows with
the region. This module implements that query model so experiment E12 can
measure the privacy/cost trade-off across levels:

* POIs (points of interest) are placed on road segments,
* a range query ("POIs within ``radius`` of the user") against a cloaked
  region returns every POI within ``radius`` of *any* region segment — a
  superset of the exact result that the client filters locally after
  de-anonymizing as far as its keys allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..roadnet.geometry import Point, point_along, point_segment_distance
from ..roadnet.graph import RoadNetwork
from ..roadnet.spatial_index import SegmentIndex

__all__ = ["PointOfInterest", "PoiDirectory", "CandidateResult", "range_query"]


@dataclass(frozen=True)
class PointOfInterest:
    """A service point on the road network.

    Attributes:
        poi_id: Stable id.
        segment_id: Segment the POI sits on.
        location: 2-D position (on the segment's straight line).
        category: Free-form category tag (e.g. ``"fuel"``).
    """

    poi_id: int
    segment_id: int
    location: Point
    category: str = "generic"


class PoiDirectory:
    """A seeded synthetic POI database over a road network.

    Args:
        network: The road map.
        count: Number of POIs to place.
        seed: RNG seed (placement is reproducible).
        categories: Category tags cycled round-robin.
    """

    def __init__(
        self,
        network: RoadNetwork,
        count: int,
        seed: int = 7,
        categories: Sequence[str] = ("fuel", "food", "atm", "pharmacy"),
    ) -> None:
        if count < 0:
            raise QueryError(f"count must be non-negative, got {count}")
        if not categories:
            raise QueryError("need at least one POI category")
        self._network = network
        rng = np.random.default_rng(seed)
        segment_ids = network.segment_ids()
        if not segment_ids and count > 0:
            raise QueryError("cannot place POIs on an empty network")
        pois: List[PointOfInterest] = []
        for poi_id in range(count):
            segment_id = int(segment_ids[rng.integers(0, len(segment_ids))])
            a, b = network.segment_endpoints(segment_id)
            location = point_along(a, b, float(rng.uniform(0.0, 1.0)))
            pois.append(
                PointOfInterest(
                    poi_id=poi_id,
                    segment_id=segment_id,
                    location=location,
                    category=categories[poi_id % len(categories)],
                )
            )
        self._pois: Tuple[PointOfInterest, ...] = tuple(pois)
        self._by_segment: Dict[int, List[PointOfInterest]] = {}
        for poi in self._pois:
            self._by_segment.setdefault(poi.segment_id, []).append(poi)

    @property
    def network(self) -> RoadNetwork:
        return self._network

    def __len__(self) -> int:
        return len(self._pois)

    def all_pois(self) -> Tuple[PointOfInterest, ...]:
        return self._pois

    def pois_on(self, segment_id: int) -> Tuple[PointOfInterest, ...]:
        return tuple(self._by_segment.get(segment_id, ()))

    def pois_near_point(
        self, point: Point, radius: float, category: Optional[str] = None
    ) -> Tuple[PointOfInterest, ...]:
        """POIs within ``radius`` of ``point`` (exact result for one position)."""
        if radius < 0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        hits = [
            poi
            for poi in self._pois
            if poi.location.distance_to(point) <= radius
            and (category is None or poi.category == category)
        ]
        return tuple(hits)


@dataclass(frozen=True)
class CandidateResult:
    """The anonymous query answer for a cloaked region.

    Attributes:
        region_size: Number of segments in the queried region.
        candidates: Candidate POIs (superset of the exact answer for every
            possible user position in the region).
        exact_for_segment: Exact answers per region segment — what the
            client keeps after de-anonymizing down to a given region.
    """

    region_size: int
    candidates: Tuple[PointOfInterest, ...]
    exact_for_segment: Dict[int, Tuple[PointOfInterest, ...]]

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)

    def precision_for(self, true_segment: int) -> float:
        """|exact| / |candidates| for the true user segment — the fraction
        of returned work that was actually useful."""
        if not self.candidates:
            return 1.0
        exact = self.exact_for_segment.get(true_segment, ())
        return len(exact) / len(self.candidates)


def range_query(
    directory: PoiDirectory,
    region: AbstractSet[int],
    radius: float,
    category: Optional[str] = None,
) -> CandidateResult:
    """Answer an anonymous range query for a cloaked ``region``.

    The candidate set contains every POI within ``radius`` of any point of
    any region segment (conservative: distance is measured to the segment's
    straight line). Cost grows with the region, which is the effect
    experiment E12 quantifies level by level.
    """
    if radius < 0:
        raise QueryError(f"radius must be non-negative, got {radius}")
    if not region:
        raise QueryError("cannot query an empty region")
    network = directory.network
    candidate_ids: Dict[int, PointOfInterest] = {}
    exact: Dict[int, Tuple[PointOfInterest, ...]] = {}
    for segment_id in sorted(region):
        a, b = network.segment_endpoints(segment_id)
        per_segment: List[PointOfInterest] = []
        for poi in directory.all_pois():
            if category is not None and poi.category != category:
                continue
            if point_segment_distance(poi.location, a, b) <= radius:
                candidate_ids[poi.poi_id] = poi
                per_segment.append(poi)
        exact[segment_id] = tuple(per_segment)
    ordered = tuple(candidate_ids[poi_id] for poi_id in sorted(candidate_ids))
    return CandidateResult(
        region_size=len(region), candidates=ordered, exact_for_segment=exact
    )
