"""The transport-neutral wire protocol of the serving layer.

The paper's deployment (Section II-B) is a client / anonymizer / LBS
pipeline: cloaking and de-anonymization requests cross process and machine
boundaries. This module defines the versioned, JSON-round-trippable
documents those boundaries exchange, so any transport — an in-process call,
a thread pool, a sharded process pool, an HTTP front-end — can carry the
same requests and produce byte-identical results:

* :class:`CloakRequestDoc` — one client's anonymization request (user id,
  profile, per-level keys, optionally the pre-resolved segment),
* :class:`DeanonymizeRequestDoc` — a requester's reversal request
  (envelope, granted keys, target level, reversal mode),
* :class:`DeanonymizeBatchDoc` — an ordered batch of reversal requests,
  served as one unit on an execution backend (key material travels inside
  each item as the existing key-grant documents),
* :class:`OutcomeDoc` — the uniform response envelope: a success payload
  (cloak envelope or recovered regions) *or* a structured error code,
* :class:`BatchOutcomeDoc` — the positional outcome list of a batch
  request: one :class:`OutcomeDoc` per item, same order, with per-item
  structured error codes (one failing item never poisons its siblings).

Every parser raises :class:`~repro.errors.WireFormatError` on a malformed
document; serving surfaces map that to the stable error code
``"malformed_document"``. Error codes are part of the protocol: they are
stable strings (see :data:`ERROR_CODES`), never Python class names, so
non-Python clients can switch on them and process-pool workers can ship
failures back without pickling exception objects.

Secrecy note: request documents necessarily carry key material (the
anonymizer needs the keys to drive the expansion; that is the paper's trust
model). They are wire forms for links *inside* the trusted perimeter —
client to anonymizer, anonymizer to its workers — and must never be logged
or published. Outcome documents carry no key material.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from ..core.engine import DeanonymizationResult
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import (
    WIRE_ERROR_CODES,
    CloakingError,
    CollisionError,
    DeanonymizationError,
    FrontierExhaustedError,
    ReverseCloakError,
    ToleranceExceededError,
    WireFormatError,
)
from ..keys.keys import AccessKey, KeyChain
from ..mobility.snapshot import PopulationSnapshot

__all__ = [
    "WIRE_VERSION",
    "CLOAK_REQUEST_FORMAT",
    "DEANONYMIZE_REQUEST_FORMAT",
    "DEANONYMIZE_BATCH_FORMAT",
    "OUTCOME_FORMAT",
    "BATCH_OUTCOME_FORMAT",
    "SNAPSHOT_FORMAT",
    "STATS_REQUEST_FORMAT",
    "STATS_FORMAT",
    "PING_REQUEST_FORMAT",
    "PING_FORMAT",
    "HEALTH_REQUEST_FORMAT",
    "HEALTH_FORMAT",
    "MALFORMED_DOCUMENT",
    "ERROR_CODES",
    "CloakRequest",
    "CloakRequestDoc",
    "DeanonymizeRequestDoc",
    "DeanonymizeBatchDoc",
    "OutcomeDoc",
    "BatchOutcomeDoc",
    "error_code_for",
    "error_class_for_code",
    "error_doc_for",
    "exception_from_error_doc",
    "snapshot_to_dict",
    "snapshot_from_dict",
]

WIRE_VERSION = 1

CLOAK_REQUEST_FORMAT = "repro.cloak_request"
DEANONYMIZE_REQUEST_FORMAT = "repro.deanonymize_request"
DEANONYMIZE_BATCH_FORMAT = "repro.deanonymize_batch"
OUTCOME_FORMAT = "repro.outcome"
BATCH_OUTCOME_FORMAT = "repro.batch_outcome"
SNAPSHOT_FORMAT = "repro.snapshot"
STATS_REQUEST_FORMAT = "repro.stats_request"
STATS_FORMAT = "repro.stats"
PING_REQUEST_FORMAT = "repro.ping"
PING_FORMAT = "repro.pong"
HEALTH_REQUEST_FORMAT = "repro.health_request"
HEALTH_FORMAT = "repro.health"

#: The error code every malformed wire document maps to.
MALFORMED_DOCUMENT = "malformed_document"


@dataclass(frozen=True)
class CloakRequest:
    """One mobile client's anonymization request.

    Attributes:
        user_id: The requesting user (must be present in the snapshot).
        profile: The user-defined multi-level privacy profile.
        chain: The user's per-level access keys (kept client-side after the
            request; the server uses them only to drive the expansion).
        deadline_ms: Optional cooperative serving deadline in milliseconds.
            The clock starts when a server begins executing the request;
            expiry surfaces as the structured ``deadline_exceeded`` code.
        user_segment: The user's segment, when the caller already resolved
            it against the serving snapshot (transport front-ends and
            execution backends do, so the engine never re-resolves).
            ``None`` means serving must look the user up itself.
    """

    user_id: int
    profile: PrivacyProfile
    chain: KeyChain
    deadline_ms: Optional[float] = None
    user_segment: Optional[int] = None


def _require(document, kind: str) -> dict:
    """Common envelope of every wire parser: dict, format tag, version."""
    if not isinstance(document, dict):
        raise WireFormatError(
            f"{kind} document must be a dict, got {type(document).__name__}"
        )
    if document.get("format") != kind:
        raise WireFormatError(
            f"not a {kind} document (format={document.get('format')!r})"
        )
    if document.get("version") != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported {kind} version: {document.get('version')!r}"
        )
    return document


def _parse(kind: str, what: str, thunk):
    """Run a field parser, mapping any structural failure to WireFormatError."""
    try:
        return thunk()
    except WireFormatError:
        raise
    except (
        ReverseCloakError,
        AttributeError,
        KeyError,
        TypeError,
        ValueError,
    ) as exc:
        raise WireFormatError(f"malformed {kind}: bad {what}: {exc}") from None


#: Parsed-profile memo keyed by canonical JSON. Real workloads draw
#: profiles from a handful of presets, so batch serving parses each
#: distinct profile document once instead of once per request; profiles
#: are immutable, so sharing instances is safe. True LRU (move-to-end on
#: hit, evict oldest past the cap): request documents are attacker input,
#: so a long-running :class:`~repro.lbs.service.AnonymizerService` fed
#: churning profiles must neither grow without limit nor — as the former
#: clear-when-full policy did — drop the hot presets whenever the cap is
#: reached. Lock-guarded: backends parse concurrently.
_PROFILE_CACHE: "OrderedDict[str, PrivacyProfile]" = OrderedDict()
_PROFILE_CACHE_CAP = 256
_PROFILE_CACHE_LOCK = threading.Lock()


def _cached_profile(document) -> PrivacyProfile:
    try:
        key = json.dumps(document, sort_keys=True)
    except (TypeError, ValueError):
        return PrivacyProfile.from_dict(document)  # unhashable junk: let it fail there
    with _PROFILE_CACHE_LOCK:
        profile = _PROFILE_CACHE.get(key)
        if profile is not None:
            _PROFILE_CACHE.move_to_end(key)
            return profile
    profile = PrivacyProfile.from_dict(document)
    with _PROFILE_CACHE_LOCK:
        _PROFILE_CACHE[key] = profile
        _PROFILE_CACHE.move_to_end(key)
        while len(_PROFILE_CACHE) > _PROFILE_CACHE_CAP:
            _PROFILE_CACHE.popitem(last=False)
    return profile


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CloakRequestDoc:
    """The wire form of a :class:`CloakRequest`.

    Attributes:
        user_id: The requesting user.
        profile: The multi-level privacy profile.
        chain: The per-level access keys.
        user_segment: The user's segment, when the front-end already
            resolved it against the serving snapshot (execution backends do
            this so workers need only population *counts*, not the full
            user-to-segment map). ``None`` means the server must look the
            user up itself.
        deadline_ms: Optional cooperative serving deadline (milliseconds;
            see :class:`CloakRequest`). Omitted from the wire form when
            unset, so deadline-free documents are byte-identical to the
            previous protocol revision.
    """

    user_id: int
    profile: PrivacyProfile
    chain: KeyChain
    user_segment: Optional[int] = None
    deadline_ms: Optional[float] = None

    @classmethod
    def from_request(
        cls, request: CloakRequest, user_segment: Optional[int] = None
    ) -> "CloakRequestDoc":
        return cls(
            user_id=request.user_id,
            profile=request.profile,
            chain=request.chain,
            user_segment=(
                user_segment if user_segment is not None else request.user_segment
            ),
            deadline_ms=request.deadline_ms,
        )

    def to_request(self) -> CloakRequest:
        return CloakRequest(
            user_id=self.user_id,
            profile=self.profile,
            chain=self.chain,
            deadline_ms=self.deadline_ms,
            user_segment=self.user_segment,
        )

    def to_dict(self) -> dict:
        document = {
            "format": CLOAK_REQUEST_FORMAT,
            "version": WIRE_VERSION,
            "user_id": self.user_id,
            "profile": self.profile.to_dict(),
            "chain": self.chain.to_dict(),
            # Emitted even when None: v1 documents have always carried the
            # key, and omitting it would change their byte form (the
            # envelope oracle hashes these bytes).
            # reprolint: disable=wire-roundtrip
            "user_segment": self.user_segment,
        }
        if self.deadline_ms is not None:
            document["deadline_ms"] = self.deadline_ms
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "CloakRequestDoc":
        document = _require(document, CLOAK_REQUEST_FORMAT)
        # Flat try/except (no per-field closures): this parser sits on the
        # batch-serving hot path of the process-pool workers.
        try:
            user_id = int(document["user_id"])
            profile = _cached_profile(document["profile"])
            chain = KeyChain.from_dict(document["chain"])
            segment = document.get("user_segment")
            user_segment = None if segment is None else int(segment)
            deadline = document.get("deadline_ms")
            deadline_ms = None if deadline is None else float(deadline)
        except WireFormatError:
            raise
        except (
            ReverseCloakError,
            AttributeError,
            KeyError,
            TypeError,
            ValueError,
        ) as exc:
            raise WireFormatError(
                f"malformed {CLOAK_REQUEST_FORMAT}: {exc}"
            ) from None
        return cls(
            user_id=user_id,
            profile=profile,
            chain=chain,
            user_segment=user_segment,
            deadline_ms=deadline_ms,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "CloakRequestDoc":
        try:
            document = json.loads(payload)
        except ValueError as exc:
            raise WireFormatError(f"cloak request is not valid JSON: {exc}") from None
        return cls.from_dict(document)


@dataclass(frozen=True)
class DeanonymizeRequestDoc:
    """The wire form of a server-side de-anonymization request.

    Attributes:
        envelope: The published cloak to peel.
        keys: The requester's granted keys (typically a
            :meth:`~repro.keys.access_control.KeyGrant` suffix).
        target_level: The lowest level to recover.
        mode: ``"auto"``, ``"hint"``, or ``"search"``.
        deadline_ms: Optional cooperative serving deadline (milliseconds;
            see :class:`CloakRequest`). Omitted from the wire form when
            unset.
    """

    envelope: CloakEnvelope
    keys: Tuple[AccessKey, ...]
    target_level: int
    mode: str = "auto"
    deadline_ms: Optional[float] = None

    def key_map(self) -> Dict[int, AccessKey]:
        return {key.level: key for key in self.keys}

    def to_dict(self) -> dict:
        document = {
            "format": DEANONYMIZE_REQUEST_FORMAT,
            "version": WIRE_VERSION,
            "envelope": self.envelope.to_dict(),
            "keys": [key.to_dict() for key in self.keys],
            "target_level": self.target_level,
            "mode": self.mode,
        }
        if self.deadline_ms is not None:
            document["deadline_ms"] = self.deadline_ms
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "DeanonymizeRequestDoc":
        document = _require(document, DEANONYMIZE_REQUEST_FORMAT)
        kind = DEANONYMIZE_REQUEST_FORMAT
        envelope = _parse(
            kind, "envelope", lambda: CloakEnvelope.from_dict(document["envelope"])
        )
        keys = _parse(
            kind,
            "keys",
            lambda: tuple(AccessKey.from_dict(item) for item in document["keys"]),
        )
        target_level = _parse(
            kind, "target_level", lambda: int(document["target_level"])
        )
        mode = str(document.get("mode", "auto"))
        deadline_ms = _parse(
            kind,
            "deadline_ms",
            lambda: (
                None
                if document.get("deadline_ms") is None
                else float(document["deadline_ms"])
            ),
        )
        return cls(
            envelope=envelope,
            keys=keys,
            target_level=target_level,
            mode=mode,
            deadline_ms=deadline_ms,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "DeanonymizeRequestDoc":
        try:
            document = json.loads(payload)
        except ValueError as exc:
            raise WireFormatError(
                f"deanonymize request is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(document)


@dataclass(frozen=True)
class DeanonymizeBatchDoc:
    """An ordered batch of de-anonymization requests, served as one unit.

    Each item is a complete :class:`DeanonymizeRequestDoc` — envelope,
    granted keys (the existing key-grant wire form), target level and mode
    travel per item, so a batch may mix envelopes, algorithms and grants
    freely. The response is a :class:`BatchOutcomeDoc`: one outcome per
    item in the same position, failures carried as per-item structured
    error codes.

    ``deadline_ms`` is a batch-level *default* cooperative deadline: when
    set, serving applies it to every item that does not carry its own
    ``deadline_ms``. Per-item deadlines always win. Omitted from the wire
    form when unset.
    """

    items: Tuple[DeanonymizeRequestDoc, ...]
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.items:
            raise WireFormatError(
                "a deanonymize batch must contain at least one item"
            )

    def to_dict(self) -> dict:
        document = {
            "format": DEANONYMIZE_BATCH_FORMAT,
            "version": WIRE_VERSION,
            "items": [item.to_dict() for item in self.items],
        }
        if self.deadline_ms is not None:
            document["deadline_ms"] = self.deadline_ms
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "DeanonymizeBatchDoc":
        document = _require(document, DEANONYMIZE_BATCH_FORMAT)
        items = document.get("items")
        if not isinstance(items, list) or not items:
            raise WireFormatError(
                f"malformed {DEANONYMIZE_BATCH_FORMAT}: 'items' must be a "
                "non-empty list"
            )
        deadline_ms = _parse(
            DEANONYMIZE_BATCH_FORMAT,
            "deadline_ms",
            lambda: (
                None
                if document.get("deadline_ms") is None
                else float(document["deadline_ms"])
            ),
        )
        return cls(
            items=tuple(
                _parse(
                    DEANONYMIZE_BATCH_FORMAT,
                    f"item {index}",
                    lambda item=item: DeanonymizeRequestDoc.from_dict(item),
                )
                for index, item in enumerate(items)
            ),
            deadline_ms=deadline_ms,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "DeanonymizeBatchDoc":
        try:
            document = json.loads(payload)
        except ValueError as exc:
            raise WireFormatError(
                f"deanonymize batch is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(document)


# ----------------------------------------------------------------------
# error codes
# ----------------------------------------------------------------------
#: Stable protocol error codes, most-derived exception first. The order is
#: the dispatch order of :func:`error_code_for`, so a subclass must appear
#: before every one of its bases. The single declaration lives beside the
#: exception hierarchy as :data:`repro.errors.WIRE_ERROR_CODES`; this is
#: an alias for wire-layer callers.
ERROR_CODES: Tuple[Tuple[Type[ReverseCloakError], str], ...] = WIRE_ERROR_CODES

_CODE_TO_CLASS: Dict[str, Type[ReverseCloakError]] = {}
for _cls, _code in ERROR_CODES:
    _CODE_TO_CLASS.setdefault(_code, _cls)


def error_code_for(exc: BaseException) -> str:
    """The stable protocol code of ``exc`` (``"internal_error"`` fallback)."""
    for cls, code in ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return "internal_error"


def error_class_for_code(code: str) -> Type[ReverseCloakError]:
    """The exception class a stable protocol code reconstructs as.

    The reverse direction of :func:`error_code_for` — what a caller holding
    only an outcome document's ``error.code`` uses to attribute the failure
    (e.g. "is this a :class:`~repro.errors.CloakingError`?") without
    rebuilding the exception. Unknown codes map to the hierarchy root.
    """
    return _CODE_TO_CLASS.get(code, ReverseCloakError)


def error_doc_for(exc: BaseException) -> dict:
    """The structured error payload of an :class:`OutcomeDoc`.

    Carries the code, the human-readable message, and — for the error types
    whose constructors take structured arguments — enough detail to rebuild
    an equivalent exception on the other side of the wire.
    """
    details: dict = {}
    if isinstance(exc, ToleranceExceededError):
        details = {"level": exc.level, "detail": exc.detail}
    elif isinstance(exc, FrontierExhaustedError):
        details = {"level": exc.level}
    elif isinstance(exc, CollisionError):
        details = {"level": exc.level, "hypotheses": exc.hypotheses}
    doc = {"code": error_code_for(exc), "message": str(exc)}
    if details:
        doc["details"] = details
    return doc


#: Fallback classes for the parameterised codes: their constructors take
#: structured arguments, so a detail-less payload reconstructs as the
#: nearest message-only base instead (still catchable the same way).
_MESSAGE_ONLY_FALLBACK: Dict[str, Type[ReverseCloakError]] = {
    "tolerance_exceeded": CloakingError,
    "frontier_exhausted": CloakingError,
    "reversal_collision": DeanonymizationError,
}


def exception_from_error_doc(document: dict) -> ReverseCloakError:
    """Rebuild the typed exception an error payload describes.

    The reconstruction preserves the exception *type* (so callers can keep
    using ``except CloakingError`` across a process boundary) and the
    structured attributes of the parameterised types. A parameterised code
    arriving without usable details (e.g. from a non-Python client)
    degrades to the nearest message-only base class rather than failing.
    """
    if not isinstance(document, dict) or "code" not in document:
        raise WireFormatError("error payload must be a dict with a 'code'")
    code = str(document["code"])
    message = str(document.get("message", code))
    details = document.get("details") or {}
    try:
        if code == "tolerance_exceeded":
            return ToleranceExceededError(int(details["level"]), str(details["detail"]))
        if code == "frontier_exhausted":
            return FrontierExhaustedError(int(details["level"]))
        if code == "reversal_collision":
            return CollisionError(int(details["level"]), int(details["hypotheses"]))
    except (KeyError, TypeError, ValueError):
        pass  # detail-less variants degrade to the message-only fallback
    cls = _MESSAGE_ONLY_FALLBACK.get(code) or _CODE_TO_CLASS.get(
        code, ReverseCloakError
    )
    return cls(message)


# ----------------------------------------------------------------------
# outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OutcomeDoc:
    """The uniform serving response: success payload or structured error.

    Exactly one of the three payload shapes is present:

    * ``envelope`` — a cloaking success,
    * ``result`` — a de-anonymization success,
    * ``error_code``/``error_message`` — a structured failure.
    """

    envelope: Optional[CloakEnvelope] = None
    result: Optional[DeanonymizationResult] = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    error_details: Optional[dict] = None

    def __post_init__(self) -> None:
        present = sum(
            1
            for payload in (self.envelope, self.result, self.error_code)
            if payload is not None
        )
        if present != 1:
            raise WireFormatError(
                "an outcome carries exactly one of envelope/result/error"
            )

    @property
    def ok(self) -> bool:
        return self.error_code is None

    @classmethod
    def from_envelope(cls, envelope: CloakEnvelope) -> "OutcomeDoc":
        return cls(envelope=envelope)

    @classmethod
    def from_result(cls, result: DeanonymizationResult) -> "OutcomeDoc":
        return cls(result=result)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "OutcomeDoc":
        payload = error_doc_for(exc)
        return cls(
            error_code=payload["code"],
            error_message=payload["message"],
            error_details=payload.get("details"),
        )

    def to_exception(self) -> ReverseCloakError:
        """The typed exception of an error outcome (raises on success docs)."""
        if self.ok:
            raise WireFormatError("outcome is a success; there is no error")
        payload = {"code": self.error_code, "message": self.error_message}
        if self.error_details:
            payload["details"] = self.error_details
        return exception_from_error_doc(payload)

    def raise_if_error(self) -> "OutcomeDoc":
        """Raise the typed exception of an error outcome; return self on
        success, so transports can chain ``OutcomeDoc.from_dict(d).raise_if_error()``."""
        if not self.ok:
            raise self.to_exception()
        return self

    def to_dict(self) -> dict:
        document: dict = {
            "format": OUTCOME_FORMAT,
            "version": WIRE_VERSION,
            "status": "ok" if self.ok else "error",
        }
        if self.envelope is not None:
            document["envelope"] = self.envelope.to_dict()
        elif self.result is not None:
            document["result"] = {
                "target_level": self.result.target_level,
                "regions": {
                    str(level): list(region)
                    for level, region in sorted(self.result.regions.items())
                },
                "removed": {
                    str(level): list(removed)
                    for level, removed in sorted(self.result.removed.items())
                },
            }
        else:
            document["error"] = {
                "code": self.error_code,
                "message": self.error_message,
            }
            if self.error_details:
                document["error"]["details"] = dict(self.error_details)
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "OutcomeDoc":
        document = _require(document, OUTCOME_FORMAT)
        kind = OUTCOME_FORMAT
        status = document.get("status")
        if status == "ok":
            if "envelope" in document:
                envelope = _parse(
                    kind,
                    "envelope",
                    lambda: CloakEnvelope.from_dict(document["envelope"]),
                )
                return cls(envelope=envelope)
            if "result" in document:
                def build_result() -> DeanonymizationResult:
                    payload = document["result"]
                    return DeanonymizationResult(
                        target_level=int(payload["target_level"]),
                        regions={
                            int(level): tuple(int(s) for s in region)
                            for level, region in payload["regions"].items()
                        },
                        removed={
                            int(level): tuple(int(s) for s in removed)
                            for level, removed in payload["removed"].items()
                        },
                    )

                return cls(result=_parse(kind, "result", build_result))
            raise WireFormatError("ok outcome carries neither envelope nor result")
        if status == "error":
            error = document.get("error")
            if not isinstance(error, dict) or "code" not in error:
                raise WireFormatError("error outcome carries no structured error")
            return cls(
                error_code=str(error["code"]),
                error_message=str(error.get("message", error["code"])),
                error_details=error.get("details"),
            )
        raise WireFormatError(f"unknown outcome status: {status!r}")

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "OutcomeDoc":
        try:
            document = json.loads(payload)
        except ValueError as exc:
            raise WireFormatError(f"outcome is not valid JSON: {exc}") from None
        return cls.from_dict(document)


@dataclass(frozen=True)
class BatchOutcomeDoc:
    """The positional response of a batch request.

    One :class:`OutcomeDoc` per submitted item, in submission order —
    failures sit in place as structured error outcomes, so a client can
    retry or report per item without re-correlating anything.
    """

    outcomes: Tuple[OutcomeDoc, ...]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise WireFormatError(
                "a batch outcome must contain at least one outcome"
            )

    @property
    def ok(self) -> bool:
        """Whether every item succeeded."""
        return all(outcome.ok for outcome in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "format": BATCH_OUTCOME_FORMAT,
            "version": WIRE_VERSION,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "BatchOutcomeDoc":
        document = _require(document, BATCH_OUTCOME_FORMAT)
        outcomes = document.get("outcomes")
        if not isinstance(outcomes, list) or not outcomes:
            raise WireFormatError(
                f"malformed {BATCH_OUTCOME_FORMAT}: 'outcomes' must be a "
                "non-empty list"
            )
        return cls(
            outcomes=tuple(
                _parse(
                    BATCH_OUTCOME_FORMAT,
                    f"outcome {index}",
                    lambda item=item: OutcomeDoc.from_dict(item),
                )
                for index, item in enumerate(outcomes)
            )
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "BatchOutcomeDoc":
        try:
            document = json.loads(payload)
        except ValueError as exc:
            raise WireFormatError(
                f"batch outcome is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(document)


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def snapshot_to_dict(
    snapshot: PopulationSnapshot, counts_only: bool = False
) -> dict:
    """The wire form of a population snapshot.

    With ``counts_only`` the document carries per-segment *counts* instead
    of the user-to-segment map — an order of magnitude smaller, and exactly
    what cloaking needs (``delta_k`` compares counts; envelopes never
    mention user ids). Execution backends ship the counts form to workers
    after resolving each request's user to a segment up front; the
    identity-preserving form exists for transports that need the lookup on
    the far side.
    """
    document: dict = {
        "format": SNAPSHOT_FORMAT,
        "version": WIRE_VERSION,
        "time": snapshot.time,
    }
    if counts_only:
        document["counts"] = {
            str(segment_id): snapshot.count_on(segment_id)
            for segment_id in snapshot.occupied_segments()
        }
    else:
        document["users"] = {
            str(user_id): snapshot.segment_of(user_id)
            for user_id in snapshot.users()
        }
    return document


def snapshot_from_dict(document: dict) -> PopulationSnapshot:
    """Rebuild a snapshot from :func:`snapshot_to_dict` output.

    A counts-form document synthesizes consecutive user ids (like
    :meth:`PopulationSnapshot.from_counts`): counts — the cloaking-relevant
    content — round-trip exactly, identities do not.
    """
    document = _require(document, SNAPSHOT_FORMAT)
    kind = SNAPSHOT_FORMAT
    time = _parse(kind, "time", lambda: float(document.get("time", 0.0)))
    if "users" in document:
        return _parse(
            kind,
            "users",
            lambda: PopulationSnapshot(
                {
                    int(user_id): int(segment_id)
                    for user_id, segment_id in document["users"].items()
                },
                time=time,
            ),
        )
    if "counts" in document:
        return _parse(
            kind,
            "counts",
            lambda: PopulationSnapshot.from_counts(
                {
                    int(segment_id): int(count)
                    for segment_id, count in document["counts"].items()
                },
                time=time,
            ),
        )
    raise WireFormatError("snapshot document carries neither users nor counts")
