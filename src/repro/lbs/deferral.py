"""Temporal cloaking: deferring requests until anonymity is reachable.

The paper's Algorithm 1 signature carries a *temporal key* ``Kt`` and a
temporal tolerance ``sigma_t`` alongside the spatial ones — the classic
spatio-temporal cloaking knob of Gruteser & Grunwald [3]: when a request
cannot reach ``delta_k`` within its spatial tolerance *right now*, the
trusted anonymizer may *wait* (up to ``sigma_t`` seconds) for traffic to
move until enough users are nearby, instead of failing the request.

:class:`DeferredCloaking` implements that policy on top of the engine and a
live :class:`~repro.mobility.simulator.TrafficSimulator`: it retries the
expansion against fresh snapshots at a fixed cadence until success or the
temporal budget runs out. Experiment E14 measures how much success rate a
temporal budget buys back under tight spatial tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import CloakingError, ProfileError, ToleranceExceededError
from ..keys.keys import KeyChain
from ..mobility.simulator import TrafficSimulator

__all__ = ["TemporalTolerance", "DeferredResult", "DeferredCloaking"]


@dataclass(frozen=True)
class TemporalTolerance:
    """The temporal tolerance ``sigma_t``.

    Attributes:
        max_defer_seconds: Total simulated time a request may wait.
        retry_interval_seconds: Cadence at which the anonymizer re-checks
            (each retry advances the shared simulation and takes a fresh
            snapshot).
    """

    max_defer_seconds: float
    retry_interval_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_defer_seconds < 0:
            raise ProfileError(
                f"max_defer_seconds must be >= 0, got {self.max_defer_seconds}"
            )
        if self.retry_interval_seconds <= 0:
            raise ProfileError(
                f"retry_interval_seconds must be positive, got "
                f"{self.retry_interval_seconds}"
            )

    @property
    def max_retries(self) -> int:
        """How many deferral rounds fit in the budget.

        Rounding-tolerant: a budget that is an exact multiple of the
        cadence must grant exactly that many rounds, but the float
        quotient of such pairs can land just *below* the integer
        (``0.3 / 0.1 == 2.9999...``), and truncating it silently lost the
        final deferral round. Quotients within one part in 10^9 of an
        integer are therefore treated as exact; everything else truncates
        as before (a 0.25 s budget at a 0.1 s cadence is still 2 rounds).
        """
        quotient = self.max_defer_seconds / self.retry_interval_seconds
        nearest = round(quotient)
        if abs(quotient - nearest) <= 1e-9 * max(1.0, nearest):
            return int(nearest)
        return int(quotient)


@dataclass(frozen=True)
class DeferredResult:
    """A deferred-cloaking outcome.

    Attributes:
        envelope: The successful cloak.
        deferred_seconds: Simulated time the request waited (0.0 when it
            succeeded immediately).
        retries: Snapshot refreshes consumed.
    """

    envelope: CloakEnvelope
    deferred_seconds: float
    retries: int


class DeferredCloaking:
    """Spatio-temporal cloaking: trade waiting time for spatial tightness.

    Args:
        engine: The cloaking engine (RGE or RPLE).
        simulator: The live traffic simulation the anonymizer observes.
            Deferral *advances this simulator* — it owns simulated time, so
            callers co-ordinating several components should share one
            instance.

    Example:
        >>> # A request failing "now" may succeed two simulated seconds
        >>> # later once more cars have driven into the neighbourhood.
    """

    def __init__(
        self, engine: ReverseCloakEngine, simulator: TrafficSimulator
    ) -> None:
        if engine.network is not simulator.network:
            raise ProfileError(
                "engine and simulator must share the same road network"
            )
        self._engine = engine
        self._simulator = simulator

    @property
    def simulator(self) -> TrafficSimulator:
        return self._simulator

    def cloak_user(
        self,
        user_id: int,
        profile: PrivacyProfile,
        chain: KeyChain,
        temporal: TemporalTolerance,
        include_hints: bool = True,
    ) -> DeferredResult:
        """Cloak ``user_id``'s current segment, deferring when necessary.

        The user's segment is re-read from each fresh snapshot — a deferred
        user keeps moving, which is exactly what makes deferral effective
        (both the user and the surrounding traffic drift toward each other).

        Raises:
            CloakingError: The temporal budget ran out before the spatial
                requirements became reachable (the final attempt's error is
                re-raised, typically :class:`ToleranceExceededError`).
        """
        last_error: Optional[CloakingError] = None
        for retries in range(temporal.max_retries + 1):
            snapshot = self._simulator.snapshot()
            if not snapshot.has_user(user_id):
                raise CloakingError(f"user {user_id} not in the simulation")
            user_segment = snapshot.segment_of(user_id)
            try:
                envelope = self._engine.anonymize(
                    user_segment, snapshot, profile, chain,
                    include_hints=include_hints,
                )
            except CloakingError as error:
                last_error = error
                if retries == temporal.max_retries:
                    break
                self._simulator.step(temporal.retry_interval_seconds)
                continue
            return DeferredResult(
                envelope=envelope,
                deferred_seconds=retries * temporal.retry_interval_seconds,
                retries=retries,
            )
        assert last_error is not None
        raise last_error
