"""Temporal cloaking: deferring requests until anonymity is reachable.

The paper's Algorithm 1 signature carries a *temporal key* ``Kt`` and a
temporal tolerance ``sigma_t`` alongside the spatial ones — the classic
spatio-temporal cloaking knob of Gruteser & Grunwald [3]: when a request
cannot reach ``delta_k`` within its spatial tolerance *right now*, the
trusted anonymizer may *wait* (up to ``sigma_t`` seconds) for traffic to
move until enough users are nearby, instead of failing the request.

:class:`DeferredCloaking` implements that policy on top of the engine and a
live :class:`~repro.mobility.simulator.TrafficSimulator`: it retries the
expansion against fresh snapshots at a fixed cadence until success or the
temporal budget runs out. Experiment E14 measures how much success rate a
temporal budget buys back under tight spatial tolerances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..core.profile import PrivacyProfile
from ..errors import CloakingError, ProfileError, ToleranceExceededError
from ..keys.keys import KeyChain
from ..mobility.simulator import TrafficSimulator

__all__ = ["TemporalTolerance", "DeferredResult", "DeferredCloaking"]


@dataclass(frozen=True)
class TemporalTolerance:
    """The temporal tolerance ``sigma_t``.

    Attributes:
        max_defer_seconds: Total simulated time a request may wait.
        retry_interval_seconds: Cadence at which the anonymizer re-checks
            (each retry advances the shared simulation and takes a fresh
            snapshot). With backoff, this is the *first* wait.
        backoff_factor: Multiplier applied to the wait after each retry
            (``1.0``, the default, keeps the original fixed-interval
            schedule byte-identical). Exponential backoff lets a deferred
            request poll densely at first — when a single tick of traffic
            drift is most likely to unlock it — without hammering the
            snapshot pipeline through a long tail.
        jitter_fraction: Deterministic jitter amplitude: each wait is
            scaled by a factor drawn uniformly from ``1 ± jitter_fraction``
            using a :class:`random.Random` seeded with ``jitter_seed``, so
            a fleet of deferred requests de-synchronizes their retries
            while any given (seed, schedule) pair stays exactly
            reproducible. ``0.0`` (default) disables jitter.
        jitter_seed: Seed of the jitter stream (ignored when
            ``jitter_fraction`` is 0).
    """

    max_defer_seconds: float
    retry_interval_seconds: float = 1.0
    backoff_factor: float = 1.0
    jitter_fraction: float = 0.0
    jitter_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_defer_seconds < 0:
            raise ProfileError(
                f"max_defer_seconds must be >= 0, got {self.max_defer_seconds}"
            )
        if self.retry_interval_seconds <= 0:
            raise ProfileError(
                f"retry_interval_seconds must be positive, got "
                f"{self.retry_interval_seconds}"
            )
        if self.backoff_factor < 1.0:
            # < 1 would shrink waits toward zero and let the schedule fit
            # unboundedly many rounds into a finite budget.
            raise ProfileError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ProfileError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )

    @property
    def uniform(self) -> bool:
        """Whether this is the original fixed-interval schedule (no
        backoff, no jitter) — the byte-identical default."""
        return self.backoff_factor == 1.0 and self.jitter_fraction == 0.0

    @property
    def max_retries(self) -> int:
        """How many deferral rounds fit in the budget.

        Rounding-tolerant: a budget that is an exact multiple of the
        cadence must grant exactly that many rounds, but the float
        quotient of such pairs can land just *below* the integer
        (``0.3 / 0.1 == 2.9999...``), and truncating it silently lost the
        final deferral round. Quotients within one part in 10^9 of an
        integer are therefore treated as exact; everything else truncates
        as before (a 0.25 s budget at a 0.1 s cadence is still 2 rounds).
        """
        quotient = self.max_defer_seconds / self.retry_interval_seconds
        nearest = round(quotient)
        if abs(quotient - nearest) <= 1e-9 * max(1.0, nearest):
            return int(nearest)
        return int(quotient)

    def wait_schedule(self) -> Tuple[float, ...]:
        """The deterministic sequence of deferral waits within the budget.

        For the uniform default this is exactly ``max_retries`` copies of
        ``retry_interval_seconds`` (sharing its rounding-tolerant count).
        With backoff/jitter, waits grow by ``backoff_factor`` per round
        (each scaled by its jitter draw) and the schedule stops at the
        last wait whose *cumulative* time still fits ``max_defer_seconds``
        — the budget bounds total waiting, not round count. Pure function
        of the tolerance's fields: the same tolerance always yields the
        same schedule.
        """
        if self.uniform:
            return (self.retry_interval_seconds,) * self.max_retries
        rng = (
            random.Random(self.jitter_seed) if self.jitter_fraction else None
        )
        waits = []
        elapsed = 0.0
        interval = self.retry_interval_seconds
        while True:
            wait = interval
            if rng is not None:
                wait *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
            # Same one-part-in-10^9 tolerance as max_retries: a cumulative
            # sum that is the budget bar float noise still fits.
            if elapsed + wait > self.max_defer_seconds * (1.0 + 1e-9):
                return tuple(waits)
            waits.append(wait)
            elapsed += wait
            interval *= self.backoff_factor


@dataclass(frozen=True)
class DeferredResult:
    """A deferred-cloaking outcome.

    Attributes:
        envelope: The successful cloak.
        deferred_seconds: Simulated time the request waited (0.0 when it
            succeeded immediately).
        retries: Snapshot refreshes consumed.
    """

    envelope: CloakEnvelope
    deferred_seconds: float
    retries: int


class DeferredCloaking:
    """Spatio-temporal cloaking: trade waiting time for spatial tightness.

    Args:
        engine: The cloaking engine (RGE or RPLE).
        simulator: The live traffic simulation the anonymizer observes.
            Deferral *advances this simulator* — it owns simulated time, so
            callers co-ordinating several components should share one
            instance.

    Example:
        >>> # A request failing "now" may succeed two simulated seconds
        >>> # later once more cars have driven into the neighbourhood.
    """

    def __init__(
        self, engine: ReverseCloakEngine, simulator: TrafficSimulator
    ) -> None:
        if engine.network is not simulator.network:
            raise ProfileError(
                "engine and simulator must share the same road network"
            )
        self._engine = engine
        self._simulator = simulator

    @property
    def simulator(self) -> TrafficSimulator:
        return self._simulator

    def cloak_user(
        self,
        user_id: int,
        profile: PrivacyProfile,
        chain: KeyChain,
        temporal: TemporalTolerance,
        include_hints: bool = True,
    ) -> DeferredResult:
        """Cloak ``user_id``'s current segment, deferring when necessary.

        The user's segment is re-read from each fresh snapshot — a deferred
        user keeps moving, which is exactly what makes deferral effective
        (both the user and the surrounding traffic drift toward each other).

        Raises:
            CloakingError: The temporal budget ran out before the spatial
                requirements became reachable (the final attempt's error is
                re-raised, typically :class:`ToleranceExceededError`).
        """
        schedule = temporal.wait_schedule()
        last_error: Optional[CloakingError] = None
        waited = 0.0
        for retries in range(len(schedule) + 1):
            snapshot = self._simulator.snapshot()
            if not snapshot.has_user(user_id):
                raise CloakingError(f"user {user_id} not in the simulation")
            user_segment = snapshot.segment_of(user_id)
            try:
                envelope = self._engine.anonymize(
                    user_segment, snapshot, profile, chain,
                    include_hints=include_hints,
                )
            except CloakingError as error:
                last_error = error
                if retries == len(schedule):
                    break
                self._simulator.step(schedule[retries])
                waited += schedule[retries]
                continue
            # The uniform schedule keeps the historical product form (a
            # float sum of N equal waits is not bit-equal to N * wait).
            deferred = (
                retries * temporal.retry_interval_seconds
                if temporal.uniform
                else waited
            )
            return DeferredResult(
                envelope=envelope,
                deferred_seconds=deferred,
                retries=retries,
            )
        assert last_error is not None
        raise last_error
