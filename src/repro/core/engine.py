"""The multi-level ReverseCloak engine: anonymize and de-anonymize.

This is the system's public entry point (paper Section II-B). The engine
owns the level loop; the per-step mechanics live in the algorithms
(:mod:`repro.core.rge`, :mod:`repro.core.rple`) and the reversal search in
:mod:`repro.core.reversal`.

Anonymization: starting from the user's segment (level ``L^0``), each keyed
level expands the region until its ``(delta_k, delta_l)`` requirement holds,
selecting segments with that level's key. The result is a
:class:`~repro.core.envelope.CloakEnvelope`.

De-anonymization: a requester holding the keys of levels ``j+1..N-1`` peels
the envelope down to level ``j``, recovering each intermediate region
exactly. Three bootstrap modes (decision D1):

* ``"hint"`` — unseal the per-level last-added hint (deterministic, default),
* ``"search"`` — paper-faithful hypothesis search over frontier-removable
  segments with replay certification,
* ``"auto"`` — hints when present, search otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..errors import (
    CloakingError,
    CollisionError,
    DeanonymizationError,
    EnvelopeError,
    KeyMismatchError,
    ProfileError,
)
from ..keys.keys import AccessKey, KeyChain
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from .algorithm import CloakingAlgorithm, LevelDraws
from .envelope import (
    CloakEnvelope,
    LevelRecord,
    level_mac,
    network_digest,
    region_digest,
    seal_anchor,
    unseal_anchor,
    witness_byte,
    witness_bytes,
)
from .profile import PrivacyProfile
from .region_state import RegionState
from .reversal import (
    DEFAULT_BRANCH_LIMIT,
    DrawsCache,
    PeelOutcome,
    enumerate_bootstraps,
    peel_level,
    replay_level,
)
from .rge import ReversibleGlobalExpansion
from .rple import ReversiblePreassignmentExpansion

__all__ = [
    "ReverseCloakEngine",
    "DeanonymizationResult",
    "algorithm_for_envelope",
    "algorithm_from_spec",
]

KeysLike = Union[KeyChain, Mapping[int, AccessKey], Iterable[AccessKey]]


def _normalize_keys(keys: KeysLike) -> Dict[int, AccessKey]:
    if isinstance(keys, KeyChain):
        return {key.level: key for key in keys}
    if isinstance(keys, Mapping):
        for level, key in keys.items():
            if key.level != level:
                raise ProfileError(
                    f"key for level {key.level} registered under level {level}"
                )
        return dict(keys)
    return {key.level: key for key in keys}


def algorithm_from_spec(
    network: RoadNetwork, name: str, params: Optional[Mapping] = None
) -> CloakingAlgorithm:
    """Reconstruct an algorithm from its wire spec ``(name, params)``.

    This is the single place a serialized algorithm identity (envelope
    metadata, a backend worker's engine spec) turns back into an instance.
    Pre-assignment is deterministic, so the RPLE instance built here is
    identical to the anonymizer's.
    """
    params = params or {}
    if name == ReversibleGlobalExpansion.name:
        return ReversibleGlobalExpansion()
    if name == ReversiblePreassignmentExpansion.name:
        max_hops = params.get("max_hops")
        return ReversiblePreassignmentExpansion.for_network(
            network,
            list_length=int(params.get("list_length", 8)),
            max_hops=None if max_hops is None else int(max_hops),
        )
    raise EnvelopeError(f"unknown algorithm: {name!r}")


def algorithm_for_envelope(
    network: RoadNetwork, envelope: CloakEnvelope
) -> CloakingAlgorithm:
    """Reconstruct the algorithm instance an envelope was produced with."""
    return algorithm_from_spec(network, envelope.algorithm, envelope.algorithm_params)


@dataclass(frozen=True)
class DeanonymizationResult:
    """The outcome of peeling an envelope down to ``target_level``.

    Attributes:
        target_level: The lowest recovered level.
        regions: Recovered region per level, ``target_level .. top`` —
            ``regions[level]`` is the cloaking region of that level.
        removed: Segments removed per peeled level, in removal order.
    """

    target_level: int
    regions: Dict[int, Tuple[int, ...]]
    removed: Dict[int, Tuple[int, ...]]

    def region_at(self, level: int) -> Tuple[int, ...]:
        """The recovered region of ``level`` (ascending segment ids)."""
        try:
            return self.regions[level]
        except KeyError:
            raise DeanonymizationError(
                f"level {level} was not recovered (have "
                f"{sorted(self.regions)})"
            ) from None


class ReverseCloakEngine:
    """Anonymization/de-anonymization engine bound to one map + algorithm.

    Args:
        network: The shared road map.
        algorithm: A :class:`CloakingAlgorithm`; defaults to RGE.
        branch_limit: Hypothesis cap per level peel.
        validate_reversals: Certify every peel by forward replay (default
            on; turning it off makes hint-mode reversal fastest but trades
            away tamper detection).
        incremental: Maintain one :class:`RegionState` across the whole
            multi-level expansion (and per-region bookkeeping during
            reversal) so each step costs O(deg) instead of O(|region|).
            Off forces the original from-scratch recomputes — byte-identical
            envelopes and reversals, asymptotically slower; the flag exists
            for equivalence testing and benchmarking.
        batched_prf: Draw each level's keyed randomness through one
            :class:`LevelDraws` buffer (block pre-draws, memoized redraws,
            batched witness tags) instead of one HMAC call per transition.
            Byte-identical envelopes and reversals either way; off is the
            per-call equivalence/benchmark baseline, exactly like
            ``incremental=False``.
        undo_log: Reversal-search backtracking discipline: explore
            hypotheses on one checkpoint/rollback region state (default)
            instead of deriving one cloned state per visited region (the
            PR 1-3 path). Outcomes are byte-identical either way; the flag
            exists for equivalence testing and benchmarking, exactly like
            ``incremental`` and ``batched_prf``. Ignored when
            ``incremental`` is off.

    Example:
        >>> from repro.roadnet import grid_network
        >>> from repro.mobility import PopulationSnapshot
        >>> from repro.keys import KeyChain
        >>> from repro.core import PrivacyProfile
        >>> network = grid_network(6, 6)
        >>> snapshot = PopulationSnapshot.from_counts(
        ...     {sid: 2 for sid in network.segment_ids()})
        >>> profile = PrivacyProfile.uniform(levels=2, base_k=4, k_step=4,
        ...                                  base_l=3, l_step=2,
        ...                                  max_segments=30)
        >>> chain = KeyChain.generate(profile.level_count)
        >>> engine = ReverseCloakEngine(network)
        >>> envelope = engine.anonymize(30, snapshot, profile, chain)
        >>> result = engine.deanonymize(envelope, chain, target_level=0)
        >>> result.region_at(0)
        (30,)
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Optional[CloakingAlgorithm] = None,
        branch_limit: int = DEFAULT_BRANCH_LIMIT,
        validate_reversals: bool = True,
        incremental: bool = True,
        batched_prf: bool = True,
        undo_log: bool = True,
    ) -> None:
        self._network = network
        self._algorithm = algorithm or ReversibleGlobalExpansion()
        self._branch_limit = branch_limit
        self._validate = validate_reversals
        self._incremental = incremental
        self._batched_prf = batched_prf
        self._undo_log = undo_log
        self._net_digest = network_digest(network)

    @classmethod
    def for_envelope(
        cls,
        network: RoadNetwork,
        envelope: CloakEnvelope,
        branch_limit: int = DEFAULT_BRANCH_LIMIT,
        validate_reversals: bool = True,
        incremental: bool = True,
        batched_prf: bool = True,
        undo_log: bool = True,
    ) -> "ReverseCloakEngine":
        """An engine configured to reverse ``envelope`` (requester side)."""
        return cls(
            network,
            algorithm_for_envelope(network, envelope),
            branch_limit=branch_limit,
            validate_reversals=validate_reversals,
            incremental=incremental,
            batched_prf=batched_prf,
            undo_log=undo_log,
        )

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def algorithm(self) -> CloakingAlgorithm:
        return self._algorithm

    # ------------------------------------------------------------------
    # anonymization
    # ------------------------------------------------------------------
    def anonymize(
        self,
        user_segment: int,
        snapshot: PopulationSnapshot,
        profile: PrivacyProfile,
        chain: KeyChain,
        include_hints: bool = True,
        checkpoint: Optional[Callable[[], None]] = None,
    ) -> CloakEnvelope:
        """Cloak ``user_segment`` under every level of ``profile``.

        Args:
            user_segment: The segment holding the actual user (level 0).
            snapshot: Current user-to-segment assignment (for ``delta_k``).
            profile: The user-defined multi-level privacy profile.
            chain: One key per level (``chain.levels`` must match).
            include_hints: Embed sealed last-added hints per level
                (decision D1; disable to produce a pure search-mode
                envelope).
            checkpoint: Optional zero-argument callable invoked between
                expansion steps and at each level boundary. The serving
                layer threads cooperative deadline checks through here
                (:class:`~repro.lbs.faults.Deadline`); a checkpoint aborts
                by raising. Cooperative, not preemptive: the step in
                progress always completes first.

        Raises:
            ToleranceExceededError: A level hit ``sigma_s`` unsatisfied.
            FrontierExhaustedError: A level consumed its whole component.
            CloakingError: Other expansion failures (e.g. an RPLE dead end).
        """
        self._network.segment(user_segment)
        if chain.levels != profile.level_count:
            raise ProfileError(
                f"profile has {profile.level_count} levels but the chain has "
                f"{chain.levels} keys"
            )
        # One incrementally maintained state carries the region across every
        # level: frontier, running length/bbox/population and the sorted
        # member order survive level boundaries, so no level re-derives
        # anything about the region it inherited.
        state: Optional[RegionState] = (
            RegionState(self._network, (user_segment,), snapshot=snapshot)
            if self._incremental
            else None
        )
        region = state.members if state is not None else {user_segment}
        anchor = user_segment
        records: List[LevelRecord] = []
        step_cap = self._network.segment_count + 1
        for level in range(1, profile.level_count + 1):
            if checkpoint is not None:
                checkpoint()
            requirement = profile.requirement(level)
            key = chain.key_for(level)
            # One draw buffer per level: the level's R_i values are block
            # pre-drawn ahead of the expansion instead of one HMAC per
            # transition (identical values either way).
            draws = LevelDraws(key) if self._batched_prf else None
            start_anchor = anchor
            steps = 0
            step_anchors: List[int] = []
            while not requirement.satisfied_by(
                self._network, region, snapshot, state=state
            ):
                if steps >= step_cap:
                    raise CloakingError(
                        f"level {level} exceeded {step_cap} transitions"
                    )
                if checkpoint is not None:
                    checkpoint()
                step_anchors.append(anchor)
                segment = self._algorithm.forward_step(
                    self._network, region, anchor, key, steps + 1,
                    requirement.tolerance, state=state, draws=draws,
                )
                if state is not None:
                    state.add(segment)
                else:
                    region.add(segment)
                anchor = segment
                steps += 1
            sealed = seal_anchor(key, anchor, "hint") if include_hints else None
            sealed_start = (
                seal_anchor(key, start_anchor, "start") if include_hints else None
            )
            if not include_hints:
                witnesses: Tuple[int, ...] = ()
            elif self._batched_prf:
                witnesses = witness_bytes(key, step_anchors)
            else:
                witnesses = tuple(
                    witness_byte(key, step, step_anchor)
                    for step, step_anchor in enumerate(step_anchors, start=1)
                )
            digest = region_digest(region)
            records.append(
                LevelRecord(
                    level=level,
                    steps=steps,
                    k=requirement.k,
                    l=requirement.l,
                    tolerance=requirement.tolerance,
                    sealed_anchor=sealed,
                    sealed_start=sealed_start,
                    witnesses=witnesses,
                    mac=level_mac(
                        key, level, steps, sealed, sealed_start, witnesses,
                        digest, self._algorithm.name, self._net_digest,
                    ),
                    digest=digest,
                )
            )
        return CloakEnvelope(
            algorithm=self._algorithm.name,
            algorithm_params=self._algorithm.params(),
            network_name=self._network.name,
            net_digest=self._net_digest,
            region=tuple(sorted(region)),
            levels=tuple(records),
            snapshot_time=snapshot.time,
        )

    # ------------------------------------------------------------------
    # de-anonymization
    # ------------------------------------------------------------------
    def deanonymize(
        self,
        envelope: CloakEnvelope,
        keys: KeysLike,
        target_level: int,
        mode: str = "auto",
        draws_cache: Optional[DrawsCache] = None,
        checkpoint: Optional[Callable[[], None]] = None,
    ) -> DeanonymizationResult:
        """Peel ``envelope`` down to ``target_level``.

        Args:
            envelope: The published cloak.
            keys: Keys covering levels ``target_level+1 .. top`` (a
                :class:`KeyChain`, a ``{level: key}`` mapping, or any
                iterable of keys — extras are ignored).
            target_level: The lowest level to recover (0 recovers the user's
                segment).
            mode: ``"hint"``, ``"search"``, or ``"auto"``.
            draws_cache: Optional cross-request
                :class:`~repro.core.reversal.DrawsCache` — batch callers
                pass one so peels of envelopes sharing level keys reuse
                each other's memoized keyed draws. Values are pure
                functions of the key, so results are byte-identical with
                or without it.
            checkpoint: Optional zero-argument callable invoked before
                each level peel (cooperative deadline hook; see
                :meth:`anonymize`).

        Raises:
            KeyMismatchError: A key fails its level MAC or hint check.
            CollisionError: Search found zero or multiple certified peels.
            EnvelopeError: Map mismatch or malformed envelope.
        """
        if mode not in ("auto", "hint", "search"):
            raise DeanonymizationError(f"unknown reversal mode: {mode!r}")
        if envelope.net_digest != self._net_digest:
            raise EnvelopeError(
                "envelope was produced on a different road network "
                f"({envelope.net_digest} != {self._net_digest})"
            )
        if envelope.algorithm != self._algorithm.name:
            raise EnvelopeError(
                f"envelope algorithm {envelope.algorithm!r} does not match "
                f"engine algorithm {self._algorithm.name!r}"
            )
        top = envelope.top_level
        if not 0 <= target_level < top:
            raise DeanonymizationError(
                f"target_level must be in 0..{top - 1}, got {target_level}"
            )
        key_map = _normalize_keys(keys)
        for level in range(target_level + 1, top + 1):
            if level not in key_map:
                raise KeyMismatchError(
                    f"missing key for level {level} (need levels "
                    f"{target_level + 1}..{top})"
                )

        regions: Dict[int, Tuple[int, ...]] = {top: envelope.region}
        removed: Dict[int, Tuple[int, ...]] = {}
        region = frozenset(envelope.region)
        chained_anchors: Tuple[int, ...] = ()
        for level in range(top, target_level, -1):
            if checkpoint is not None:
                checkpoint()
            record = envelope.level_record(level)
            key = key_map[level]
            record.verify_key(key, envelope.algorithm, envelope.net_digest)
            # One shared draw buffer per level peel: every hypothesis and
            # replay certification below re-reads the same keyed values.
            # A batch caller's cache widens the sharing to sibling
            # envelopes peeled under the same key.
            if not self._batched_prf:
                draws = None
            elif draws_cache is not None:
                draws = draws_cache.draws_for(key, lookahead=record.steps)
            else:
                draws = LevelDraws(key, lookahead=record.steps)
            if region_digest(region) != record.digest:
                raise EnvelopeError(
                    f"level {level} digest mismatch: envelope inconsistent"
                )
            if level == 1 and mode != "search" and record.sealed_start is not None:
                # Level 1's sealed start anchor *is* the L0 region, so the
                # innermost peel reduces to a forward replay — O(steps),
                # no hypothesis search. This matters: level 1 typically
                # adds the most segments of any level.
                region, removed[1] = self._reconstruct_level_one(
                    record, key, region, draws=draws
                )
                regions[0] = tuple(sorted(region))
                continue
            bootstraps = self._bootstraps_for(
                mode, record, key, region, chained_anchors
            )
            expected_digest = (
                envelope.level_record(level - 1).digest if level - 1 >= 1 else None
            )
            expected_start: Optional[int] = None
            if mode != "search" and record.sealed_start is not None:
                expected_start = unseal_anchor(key, record.sealed_start, "start")
            accept = (
                self._hint_acceptor(expected_start, expected_digest)
                if expected_start is not None
                else None
            )
            witness_filter = None
            if mode != "search" and record.witnesses:
                witness_filter = self._witness_filter(key, record.witnesses)
            outcomes = peel_level(
                self._network,
                self._algorithm,
                key,
                region,
                record.steps,
                record.tolerance,
                bootstraps,
                branch_limit=self._branch_limit,
                validate=self._validate or mode == "search",
                first_only=not (self._validate or mode == "search"),
                accept=accept,
                witness_filter=witness_filter,
                use_states=self._incremental,
                draws=draws,
                undo_log=self._undo_log,
            )
            if accept is not None:
                if not outcomes:
                    raise KeyMismatchError(
                        f"no reversal of level {level} matches the sealed "
                        f"metadata (wrong key or tampered envelope)"
                    )
                outcome = outcomes[0]
                chained_anchors = (outcome.start_anchor,)
            else:
                outcome = self._select_outcome(outcomes, level, expected_digest)
                chained_anchors = tuple(
                    sorted(
                        {
                            o.start_anchor
                            for o in outcomes
                            if o.inner_region == outcome.inner_region
                        }
                    )
                )
            removed[level] = outcome.removed
            region = outcome.inner_region
            regions[level - 1] = tuple(sorted(region))
        return DeanonymizationResult(
            target_level=target_level, regions=regions, removed=removed
        )

    def deanonymize_batch(
        self,
        items: Iterable[Tuple[CloakEnvelope, KeysLike, int]],
        mode: str = "auto",
        draws_cache: Optional[DrawsCache] = None,
    ) -> List[DeanonymizationResult]:
        """Peel a batch of envelopes, sharing per-key reversal state.

        The batch twin of :meth:`deanonymize`: results are element-wise
        byte-identical to calling it once per item, but the batch resolves
        the compiled network plane once up front and threads one
        :class:`~repro.core.reversal.DrawsCache` through every peel, so
        envelopes sharing level keys (a user's timeline, re-peeled grant
        suffixes) pay for each distinct keyed draw once across the whole
        batch.

        Args:
            items: ``(envelope, keys, target_level)`` triples.
            mode: Reversal mode applied to every item.
            draws_cache: Optional externally owned cache (defaults to a
                fresh one per batch).

        Raises:
            Whatever :meth:`deanonymize` raises, on the first failing item
            — per-item error capture is the serving layer's job
            (:meth:`repro.lbs.backends.ExecutionBackend.deanonymize_batch`).
        """
        cache = draws_cache if draws_cache is not None else DrawsCache()
        # One compiled-plane resolution for the whole batch: every peel's
        # region bookkeeping reads the same plane, so touch the accessor
        # once here instead of once per item inside the hot path.
        self._network.compiled()
        return [
            self.deanonymize(
                envelope, keys, target_level, mode=mode, draws_cache=cache
            )
            for envelope, keys, target_level in items
        ]

    def _bootstraps_for(
        self,
        mode: str,
        record: LevelRecord,
        key: AccessKey,
        region: AbstractSet[int],
        chained_anchors: Tuple[int, ...],
    ) -> Tuple[int, ...]:
        """Candidate last-added segments for peeling ``record``'s level."""
        if mode in ("auto", "hint") and record.sealed_anchor is not None:
            anchor = unseal_anchor(key, record.sealed_anchor)
            if anchor not in region:
                raise KeyMismatchError(
                    f"unsealed hint for level {record.level} is not in the "
                    f"region (wrong key or tampered envelope)"
                )
            return (anchor,)
        if mode == "hint":
            raise DeanonymizationError(
                f"level {record.level} carries no sealed hint; use search mode"
            )
        if chained_anchors:
            return chained_anchors
        return enumerate_bootstraps(self._network, region)

    def _reconstruct_level_one(
        self,
        record: LevelRecord,
        key: AccessKey,
        region: frozenset,
        draws: Optional[LevelDraws] = None,
    ) -> Tuple[frozenset, Tuple[int, ...]]:
        """Peel level 1 by forward replay from the sealed user segment.

        Returns ``(L0 region, removed sequence)``. Every mismatch — start
        not in the region, replay diverging from the published region, or
        the replay's last addition contradicting the sealed bootstrap —
        indicates a wrong key or tampering and raises.
        """
        assert record.sealed_start is not None
        start = unseal_anchor(key, record.sealed_start, "start")
        if start not in region:
            raise KeyMismatchError(
                "unsealed level-1 start anchor is not in the region "
                "(wrong key or tampered envelope)"
            )
        additions = replay_level(
            self._network,
            self._algorithm,
            key,
            {start},
            start,
            record.steps,
            record.tolerance,
            use_state=self._incremental,
            draws=draws,
        )
        if additions is None or frozenset({start}) | set(additions) != region:
            raise KeyMismatchError(
                "level-1 forward replay does not regenerate the region "
                "(wrong key or tampered envelope)"
            )
        if additions and record.sealed_anchor is not None:
            bootstrap = unseal_anchor(key, record.sealed_anchor, "hint")
            if additions[-1] != bootstrap:
                raise KeyMismatchError(
                    "level-1 replay contradicts the sealed bootstrap hint"
                )
        return frozenset({start}), tuple(reversed(additions))

    @staticmethod
    def _witness_filter(key: AccessKey, witnesses: Tuple[int, ...]):
        """The per-step anchor filter from the level's keyed witnesses
        (decision D13): the anchor of step ``step`` must hash to the
        recorded byte."""

        def matches(step: int, anchor: int) -> bool:
            return witness_byte(key, step, anchor) == witnesses[step - 1]

        return matches

    @staticmethod
    def _hint_acceptor(expected_start: int, expected_digest: Optional[str]):
        """The outcome predicate of hint-mode reversal.

        The sealed start anchor pins the chain's origin, and the level
        below's public region digest pins the inner region (for level-1
        peels the inner region is exactly the start anchor's segment).
        Forward replay from a pinned (inner region, start anchor) is
        deterministic, so at most one certified outcome can match — the
        peel may therefore stop at the first match.
        """

        def accept(outcome: PeelOutcome) -> bool:
            if outcome.start_anchor != expected_start:
                return False
            if expected_digest is not None:
                return region_digest(outcome.inner_region) == expected_digest
            return outcome.inner_region == frozenset({expected_start})

        return accept

    def _select_outcome(
        self,
        outcomes: List[PeelOutcome],
        level: int,
        expected_digest: Optional[str],
    ) -> PeelOutcome:
        """Pick the unique consistent outcome or raise :class:`CollisionError`.

        Search mode's residual ambiguity collapses against the level
        below's public region digest where one exists (levels >= 1); only
        peels down to level 0 can remain genuinely ambiguous.
        """
        if not outcomes:
            raise CollisionError(level, 0)
        if expected_digest is not None:
            outcomes = [
                outcome
                for outcome in outcomes
                if region_digest(outcome.inner_region) == expected_digest
            ]
            if not outcomes:
                raise CollisionError(level, 0)
        inner_regions = {outcome.inner_region for outcome in outcomes}
        if len(inner_regions) > 1:
            raise CollisionError(level, len(inner_regions))
        return outcomes[0]
