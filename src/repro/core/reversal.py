"""Backward peeling of one privacy level (the de-anonymization core).

A level that added ``n`` segments is peeled by undoing transitions ``n`` down
to ``1``. Undoing transition ``j`` removes the segment that step added and —
via the algorithm's backward lookup on the same keyed draw — identifies the
segment added at step ``j-1``, which is the next removal target. The paper's
"collision issue" appears exactly here: a backward lookup may return several
consistent anchors (and, without a sealed hint, the *first* removal target of
the outermost level is unknown). Peeling is therefore a depth-first search
over hypotheses:

* each state carries the current region, the segment to remove, and the step
  index;
* a hypothesis dies when the removal disconnects the region or the backward
  lookup returns nothing;
* completed hypotheses are certified by *forward replay*: re-running the
  expansion from the recovered inner region with the level key must
  regenerate the removed sequence exactly. Replay is deterministic, so at
  most one removal sequence per (inner region, start anchor) survives.

With a sealed hint and a collision-free table the search degenerates to a
straight-line walk — the common, fast path. The search breadth is capped;
exceeding the cap raises :class:`~repro.errors.CollisionError` rather than
silently exploring an exponential space.

Complexity: peeling maintains incremental region bookkeeping
(:class:`~repro.core.region_state.RegionState`) per visited region — the
"can this removal keep the region connected?" test reads a cached
articulation-free set (one Tarjan pass per distinct region, O(|R| * deg))
and each backward lookup's candidate filtering uses O(1) tolerance deltas.
That turns a level peel from O(R^3) (per-hypothesis connectivity recompute
times per-candidate tolerance recompute) into O(R^2 * deg) worst case, and
hinted straight-line peels into O(R * deg). Replay certification likewise
maintains one state for its whole forward run. Pass ``use_states=False``
to force the original from-scratch recomputes (the two paths are
behaviourally identical; the flag exists for equivalence testing and
benchmarking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CloakingError, CollisionError, DeanonymizationError
from ..keys.keys import AccessKey
from ..roadnet.graph import RoadNetwork
from .algorithm import CloakingAlgorithm, LevelDraws
from .profile import ToleranceSpec
from .region_state import RegionState

__all__ = ["PeelOutcome", "peel_level", "replay_level", "enumerate_bootstraps"]

#: Default cap on explored hypotheses per level peel. RPLE dead-anchor
#: relocation (decision D12) can fan out several quickly-pruned hypotheses
#: per step, so the cap is generous; genuine run-aways still terminate.
DEFAULT_BRANCH_LIMIT = 20_000

#: Region-size crossover for the incremental bookkeeping. Below it, a
#: *hinted* (witness/accept-pinned, straight-line) peel is cheaper with the
#: original from-scratch recomputes than with per-region RegionState
#: derivation — the constant costs (container clones, exact-length
#: accumulation) dominate tiny regions. Search-mode peels keep the states
#: at every size: they revisit regions across many hypotheses, so the
#: caches amortise even when small. Both paths are behaviourally
#: identical, so crossing over is purely a constant-factor choice.
INCREMENTAL_SIZE_THRESHOLD = 32


@dataclass(frozen=True)
class PeelOutcome:
    """One consistent reversal of a level.

    Attributes:
        inner_region: The region of the level below.
        removed: Removed segments in removal order — element 0 is the
            level's last-added segment (the bootstrap).
        start_anchor: The level's starting anchor, i.e. the last-added
            segment of the level below; seeds the next level's peel.
    """

    inner_region: frozenset
    removed: Tuple[int, ...]
    start_anchor: int

    @property
    def added_sequence(self) -> Tuple[int, ...]:
        """The forward addition order this outcome implies."""
        return tuple(reversed(self.removed))


def replay_level(
    network: RoadNetwork,
    algorithm: CloakingAlgorithm,
    key: AccessKey,
    start_region: AbstractSet[int],
    start_anchor: int,
    steps: int,
    tolerance: ToleranceSpec,
    use_state: bool = True,
    draws: Optional[LevelDraws] = None,
) -> Optional[Tuple[int, ...]]:
    """Re-run ``steps`` forward transitions from a hypothesised inner state.

    Returns the addition sequence, or ``None`` when the expansion fails
    (which certifies the hypothesis as inconsistent). One incremental
    :class:`RegionState` is maintained across the whole replay (O(deg) per
    step after the O(|region| * deg) initialisation) unless ``use_state``
    is off or the final region is below the incremental crossover size.
    ``draws`` serves the keyed values from the batched PRF plane — pass the
    peel's shared buffer so replays never recompute a draw.
    """
    if len(start_region) + steps <= INCREMENTAL_SIZE_THRESHOLD:
        use_state = False
    state: Optional[RegionState] = (
        RegionState.from_region(network, start_region) if use_state else None
    )
    region = state.members if state is not None else set(start_region)
    anchor = start_anchor
    additions: List[int] = []
    for step in range(1, steps + 1):
        try:
            segment = algorithm.forward_step(
                network, region, anchor, key, step, tolerance, state=state,
                draws=draws,
            )
        except CloakingError:
            return None
        if state is not None:
            state.add(segment)
        else:
            region.add(segment)
        additions.append(segment)
        anchor = segment
    return tuple(additions)


def enumerate_bootstraps(
    network: RoadNetwork, region: AbstractSet[int]
) -> Tuple[int, ...]:
    """All possible last-added segments of ``region`` (search-mode bootstrap).

    Forward expansion keeps every intermediate region connected, so the true
    last-added segment always leaves a connected remainder when removed.
    """
    return network.articulation_free_removals(set(region))


def peel_level(
    network: RoadNetwork,
    algorithm: CloakingAlgorithm,
    key: AccessKey,
    outer_region: AbstractSet[int],
    steps: int,
    tolerance: ToleranceSpec,
    bootstraps: Sequence[int],
    branch_limit: int = DEFAULT_BRANCH_LIMIT,
    validate: bool = True,
    first_only: bool = False,
    accept: Optional[Callable[[PeelOutcome], bool]] = None,
    witness_filter: Optional[Callable[[int, int], bool]] = None,
    use_states: bool = True,
    draws: Optional[LevelDraws] = None,
) -> List[PeelOutcome]:
    """Peel one level, returning every replay-certified outcome.

    Args:
        network: The shared road map.
        algorithm: The cloaking algorithm (same instance family as forward).
        key: The level key.
        outer_region: The region including this level's additions.
        steps: Number of segments the level added (from the envelope).
        tolerance: The level's spatial tolerance (from the envelope).
        bootstraps: Candidate last-added segments to start from — a single
            unsealed hint, chained anchors from the level above, or
            :func:`enumerate_bootstraps` output.
        branch_limit: Cap on explored hypotheses; exceeding it raises
            :class:`CollisionError`.
        validate: Certify completed hypotheses by forward replay. Disabling
            skips certification (fastest path; only sensible with hints and
            collision-free tables).
        first_only: Stop at the first completed (and, if ``validate``,
            certified) outcome.
        accept: Optional outcome predicate. When given, only matching
            outcomes are collected and the search stops at the first match —
            sound whenever the predicate identifies the outcome uniquely
            (hint mode pins the start anchor and the inner-region digest, so
            replay determinism guarantees at most one match).
        witness_filter: Optional per-step anchor filter
            ``(step, anchor) -> bool`` from the envelope's keyed witnesses
            (decision D13); discards false hypotheses with probability
            255/256 per step, keeping hinted peels near-linear.
        use_states: Maintain incremental region bookkeeping (cached
            articulation-free sets, per-region :class:`RegionState`) across
            the search. Off forces the original from-scratch recomputes —
            identical outcomes, asymptotically slower.
        draws: Optional shared :class:`LevelDraws` buffer of ``key``'s
            level (the batched PRF plane). Hypotheses and replay
            certifications across the whole peel then pay for each distinct
            keyed draw once. ``None`` falls back to per-call draws.

    Returns:
        Certified outcomes. Empty when no hypothesis is consistent.
    """
    outer = frozenset(outer_region)
    if steps == 0:
        # Nothing to remove; the level's last-added equals its start anchor.
        zero_outcomes = [
            PeelOutcome(inner_region=outer, removed=(), start_anchor=bootstrap)
            for bootstrap in dict.fromkeys(bootstraps)
            if bootstrap in outer
        ]
        if accept is not None:
            zero_outcomes = [o for o in zero_outcomes if accept(o)][:1]
        return zero_outcomes
    if steps >= len(outer):
        raise DeanonymizationError(
            f"level claims {steps} additions but the region only has "
            f"{len(outer)} segments"
        )

    # The search combines three ideas:
    #
    # * *Suffix memoization* — different removal orders of the same segment
    #   set converge onto identical (region, target, step) states; the memo
    #   stores each state's consistent completions so shared subtrees are
    #   walked once instead of once per permutation.
    # * *Iterative deepening on hypothesis penalty* — algorithms tag
    #   backward hypotheses with a penalty (RPLE charges its global-fallback
    #   interpretation, decision D12). True chains use few penalised steps,
    #   so low-budget passes find them before the high-penalty hypothesis
    #   space (which is where false branches breed) is ever entered.
    # * *Certified early exit* — with an ``accept`` predicate (hint mode),
    #   replay determinism makes the first certified match unique, so the
    #   search stops there.
    explored = 0
    outcomes: List[PeelOutcome] = []
    seen_outcomes = set()
    budgets = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

    # Hinted peels walk one straight chain of small regions; below the
    # crossover the from-scratch recomputes win on constants.
    if (
        use_states
        and (witness_filter is not None or accept is not None)
        and len(outer) <= INCREMENTAL_SIZE_THRESHOLD
    ):
        use_states = False

    # Incremental bookkeeping shared across the whole peel (all budgets):
    # one RegionState per distinct region, serving both the connectivity
    # test (its cached Tarjan removable set — one pass instead of one
    # connectivity recompute per hypothesis) and O(1) frontier/tolerance
    # reads for the backward lookups. Regions recur heavily — across
    # sibling hypotheses, across deepening budgets — so the cache
    # amortises to O(1) per search node. Capped; past the cap new states
    # are derived but not stored (never evicted wholesale — the early, hot
    # entries such as the outer region and the true chain's prefixes stay
    # cached).
    state_cache: Dict[frozenset, RegionState] = {}
    _PEEL_CACHE_CAP = 4096

    def _state_of(
        region: frozenset,
        parent: Optional[frozenset] = None,
        removed: Optional[int] = None,
    ) -> RegionState:
        region_state = state_cache.get(region)
        if region_state is None:
            parent_state = (
                state_cache.get(parent) if parent is not None else None
            )
            if parent_state is not None and removed is not None:
                # Deriving by clone + single removal is O(|R|) container
                # copies; a from-scratch build costs a full neighbour scan.
                region_state = parent_state.clone()
                region_state.remove(removed)
            else:
                region_state = RegionState.from_region(network, region)
            if len(state_cache) < _PEEL_CACHE_CAP:
                state_cache[region] = region_state
        return region_state

    if use_states:
        state_cache[outer] = RegionState.from_region(network, outer)

    for budget in budgets:
        memo: dict = {}

        def search(
            region: frozenset, removing: int, step: int, remaining: int
        ) -> List[Tuple[frozenset, Tuple[int, ...], int]]:
            nonlocal explored
            state = (region, removing, step, remaining)
            if state in memo:
                return memo[state]
            explored += 1
            if explored > branch_limit:
                raise CollisionError(key.level, explored)
            completions: List[Tuple[frozenset, Tuple[int, ...], int]] = []
            if removing in region:
                inner = region - {removing}
                connected = (
                    _state_of(region).is_removable(removing)
                    if use_states
                    else network.is_connected_region(inner)
                )
                if inner and connected:
                    hypotheses = algorithm.backward_hypotheses(
                        network, inner, removing, key, step, tolerance,
                        state=(
                            _state_of(inner, region, removing)
                            if use_states
                            else None
                        ),
                        draws=draws,
                    )
                    if witness_filter is not None:
                        # The hypothesis is the anchor of forward step
                        # ``step``; its keyed witness must match. Survivors
                        # are re-ranked from zero — the filter removes the
                        # false crowd, so the first survivor must be free or
                        # a true chain would accumulate pre-filter ranks
                        # past any deepening budget.
                        hypotheses = tuple(
                            (anchor, index)
                            for index, (anchor, __) in enumerate(
                                (anchor, penalty)
                                for anchor, penalty in hypotheses
                                if witness_filter(step, anchor)
                            )
                        )
                    if step == 1:
                        completions = [
                            (inner, (removing,), anchor)
                            for anchor, penalty in hypotheses
                            if penalty <= remaining
                        ]
                    else:
                        for anchor, penalty in hypotheses:
                            if penalty > remaining:
                                continue
                            for inner2, suffix, start in search(
                                inner, anchor, step - 1, remaining - penalty
                            ):
                                completions.append(
                                    (inner2, (removing,) + suffix, start)
                                )
            memo[state] = completions
            return completions

        for bootstrap in dict.fromkeys(bootstraps):
            for inner, removed_seq, start in search(outer, bootstrap, steps, budget):
                signature = (inner, removed_seq, start)
                if signature in seen_outcomes:
                    continue
                outcome = PeelOutcome(
                    inner_region=inner, removed=removed_seq, start_anchor=start
                )
                if accept is not None and not accept(outcome):
                    continue
                if validate and not _certify(
                    network, algorithm, key, outcome, tolerance, use_states,
                    draws=draws,
                ):
                    continue
                seen_outcomes.add(signature)
                outcomes.append(outcome)
                if first_only or accept is not None:
                    return outcomes
    return outcomes


def _certify(
    network: RoadNetwork,
    algorithm: CloakingAlgorithm,
    key: AccessKey,
    outcome: PeelOutcome,
    tolerance: ToleranceSpec,
    use_state: bool = True,
    draws: Optional[LevelDraws] = None,
) -> bool:
    """Forward-replay certification of a completed peel hypothesis."""
    replayed = replay_level(
        network,
        algorithm,
        key,
        outcome.inner_region,
        outcome.start_anchor,
        len(outcome.removed),
        tolerance,
        use_state=use_state,
        draws=draws,
    )
    return replayed == outcome.added_sequence
