"""Backward peeling of one privacy level (the de-anonymization core).

A level that added ``n`` segments is peeled by undoing transitions ``n`` down
to ``1``. Undoing transition ``j`` removes the segment that step added and —
via the algorithm's backward lookup on the same keyed draw — identifies the
segment added at step ``j-1``, which is the next removal target. The paper's
"collision issue" appears exactly here: a backward lookup may return several
consistent anchors (and, without a sealed hint, the *first* removal target of
the outermost level is unknown). Peeling is therefore a depth-first search
over hypotheses:

* each state carries the current region, the segment to remove, and the step
  index;
* a hypothesis dies when the removal disconnects the region or the backward
  lookup returns nothing;
* completed hypotheses are certified by *forward replay*: re-running the
  expansion from the recovered inner region with the level key must
  regenerate the removed sequence exactly. Replay is deterministic, so at
  most one removal sequence per (inner region, start anchor) survives.

With a sealed hint and a collision-free table the search degenerates to a
straight-line walk — the common, fast path. The search breadth is capped;
exceeding the cap raises :class:`~repro.errors.CollisionError` rather than
silently exploring an exponential space.

Complexity and the checkpoint/rollback search discipline: the search owns
**one** undo-logged :class:`~repro.core.region_state.RegionState` for the
whole peel. Descending into a hypothesis is ``token = state.checkpoint();
state.remove(segment)``; returning is ``state.rollback(token)`` — O(deg)
per edge of the search tree instead of the former O(|R|) clone-per-region
derivation, so quickly-pruned branches (RPLE's dead-anchor fan-out,
decision D12) cost what they explore, not what the region weighs. The
rollback restores cached answers too, so a node's articulation-free set
(one Tarjan pass over the compiled CSR plane) survives the excursion into
its children. Two value caches keyed by the flowing region frozensets make
the iterative-deepening re-walks cheap: ``backward_hypotheses`` results
and removable sets are pure functions of (region, removed, step), so later
budget passes replay the tree mostly through dict hits. Backward lookups
read the maintained length ordering directly (``state_backward``) — no
per-node transition-table builds — and candidate filtering uses O(1)
tolerance deltas. Hinted straight-line peels stay O(R * deg); replay
certification maintains one state for its whole forward run.

Two equivalence toggles, both byte-identical in *outcomes*:
``use_states=False`` forces the seed-era from-scratch recomputes, and
``undo_log=False`` keeps incremental states but derives one clone per
visited region (the PR 1-3 discipline) — the oracle the undo-log path is
golden-tested against. The undo path's cross-budget interval memo makes
its explored-work counter advance more slowly (replayed subtrees are not
re-counted), so a search near the branch limit may complete where the
oracle path would raise; the first deepening pass — where tiny test
limits trip — counts identically on both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import CloakingError, CollisionError, DeanonymizationError
from ..keys.keys import AccessKey
from ..roadnet.graph import RoadNetwork
from .algorithm import CloakingAlgorithm, LevelDraws
from .profile import ToleranceSpec
from .region_state import RegionState

__all__ = [
    "DrawsCache",
    "PeelOutcome",
    "peel_level",
    "replay_level",
    "enumerate_bootstraps",
    "incremental_threshold",
]

#: Default cap on explored hypotheses per level peel. RPLE dead-anchor
#: relocation (decision D12) can fan out several quickly-pruned hypotheses
#: per step, so the cap is generous; genuine run-aways still terminate.
DEFAULT_BRANCH_LIMIT = 20_000

#: Calibrated cost ratio behind :func:`incremental_threshold`: roughly how
#: many neighbour-scan units a from-scratch hinted step may burn before
#: building/maintaining incremental state breaks even. Measured on grid
#: maps (mean segment degree ~6), where the crossover sits at ~32-member
#: regions — the value PR 1 hard-coded before the compiled plane existed.
_CROSSOVER_STEP_COST = 192


def incremental_threshold(network: RoadNetwork) -> int:
    """Region-size crossover for the incremental bookkeeping of ``network``.

    Below it, a *hinted* (witness/accept-pinned, straight-line) peel is
    cheaper with the original from-scratch recomputes than with maintained
    :class:`RegionState` bookkeeping — the fixed costs (state construction,
    exact-length accumulation) dominate tiny regions. The from-scratch step
    costs O(|R| * deg) while the maintained step costs ~O(deg), so the
    break-even member count scales inversely with the map's mean segment
    degree — read off the compiled plane instead of hard-coding the grid
    answer. Search-mode peels keep the states at every size: they revisit
    regions across many hypotheses, so the caches amortise even when
    small. Both paths are behaviourally identical, so crossing over is
    purely a constant-factor choice.
    """
    mean_degree = network.compiled().avg_degree
    return max(8, int(_CROSSOVER_STEP_COST / max(mean_degree, 1.0)))


class DrawsCache:
    """A per-batch pool of :class:`~repro.core.algorithm.LevelDraws` buffers.

    One level peel already shares a single draws buffer across all of its
    hypotheses and replay certifications; a *batch* of reversals goes one
    step further — envelopes produced under the same key chain (a user's
    timeline, a provider re-peeling grant suffixes) re-request exactly the
    same ``(level, key, step, attempt)`` values, so the pool hands every
    peel of the same ``(level, key material)`` pair the same memoized
    buffer. Keyed draws are pure functions of that pair, so sharing never
    changes a value — outcomes stay byte-identical with or without the
    cache.

    Not thread-safe (neither is :class:`LevelDraws`): a cache belongs to
    one serving thread's batch. Bounded — batch contents are attacker
    input on the wire endpoints, so a batch of envelopes churning distinct
    keys must not grow the pool without limit; past the cap, new keys
    simply get unpooled buffers (correct, just unshared).
    """

    __slots__ = ("_buffers", "_cap")

    #: Default buffer cap: levels x distinct chains worth sharing in one
    #: batch. Past it the cache stops pooling rather than evicting — an
    #: evicted buffer's sunk draws would be repaid in full on re-entry.
    DEFAULT_CAP = 512

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        self._buffers: Dict[Tuple[int, bytes], LevelDraws] = {}
        self._cap = cap

    def __len__(self) -> int:
        return len(self._buffers)

    def draws_for(self, key: AccessKey, lookahead: Optional[int] = None) -> LevelDraws:
        """The shared buffer of ``key`` (created on first use).

        ``lookahead`` sizes the first pre-draw block of a *new* buffer
        (an existing buffer keeps its memoized values and simply refills).
        """
        cache_key = (key.level, key.material)
        draws = self._buffers.get(cache_key)
        if draws is None:
            draws = LevelDraws(key, lookahead=lookahead)
            if len(self._buffers) < self._cap:
                self._buffers[cache_key] = draws
        return draws


@dataclass(frozen=True)
class PeelOutcome:
    """One consistent reversal of a level.

    Attributes:
        inner_region: The region of the level below.
        removed: Removed segments in removal order — element 0 is the
            level's last-added segment (the bootstrap).
        start_anchor: The level's starting anchor, i.e. the last-added
            segment of the level below; seeds the next level's peel.
    """

    inner_region: frozenset
    removed: Tuple[int, ...]
    start_anchor: int

    @property
    def added_sequence(self) -> Tuple[int, ...]:
        """The forward addition order this outcome implies."""
        return tuple(reversed(self.removed))


def replay_level(
    network: RoadNetwork,
    algorithm: CloakingAlgorithm,
    key: AccessKey,
    start_region: AbstractSet[int],
    start_anchor: int,
    steps: int,
    tolerance: ToleranceSpec,
    use_state: bool = True,
    draws: Optional[LevelDraws] = None,
) -> Optional[Tuple[int, ...]]:
    """Re-run ``steps`` forward transitions from a hypothesised inner state.

    Returns the addition sequence, or ``None`` when the expansion fails
    (which certifies the hypothesis as inconsistent). One incremental
    :class:`RegionState` is maintained across the whole replay (O(deg) per
    step after the O(|region| * deg) initialisation) unless ``use_state``
    is off or the final region is below the incremental crossover size.
    ``draws`` serves the keyed values from the batched PRF plane — pass the
    peel's shared buffer so replays never recompute a draw.
    """
    if len(start_region) + steps <= incremental_threshold(network):
        use_state = False
    state: Optional[RegionState] = (
        RegionState.from_region(network, start_region) if use_state else None
    )
    region = state.members if state is not None else set(start_region)
    anchor = start_anchor
    additions: List[int] = []
    for step in range(1, steps + 1):
        try:
            segment = algorithm.forward_step(
                network, region, anchor, key, step, tolerance, state=state,
                draws=draws,
            )
        except CloakingError:
            return None
        if state is not None:
            state.add(segment)
        else:
            region.add(segment)
        additions.append(segment)
        anchor = segment
    return tuple(additions)


def enumerate_bootstraps(
    network: RoadNetwork, region: AbstractSet[int]
) -> Tuple[int, ...]:
    """All possible last-added segments of ``region`` (search-mode bootstrap).

    Forward expansion keeps every intermediate region connected, so the true
    last-added segment always leaves a connected remainder when removed.
    """
    return network.articulation_free_removals(set(region))


def peel_level(
    network: RoadNetwork,
    algorithm: CloakingAlgorithm,
    key: AccessKey,
    outer_region: AbstractSet[int],
    steps: int,
    tolerance: ToleranceSpec,
    bootstraps: Sequence[int],
    branch_limit: int = DEFAULT_BRANCH_LIMIT,
    validate: bool = True,
    first_only: bool = False,
    accept: Optional[Callable[[PeelOutcome], bool]] = None,
    witness_filter: Optional[Callable[[int, int], bool]] = None,
    use_states: bool = True,
    draws: Optional[LevelDraws] = None,
    undo_log: bool = True,
) -> List[PeelOutcome]:
    """Peel one level, returning every replay-certified outcome.

    Args:
        network: The shared road map.
        algorithm: The cloaking algorithm (same instance family as forward).
        key: The level key.
        outer_region: The region including this level's additions.
        steps: Number of segments the level added (from the envelope).
        tolerance: The level's spatial tolerance (from the envelope).
        bootstraps: Candidate last-added segments to start from — a single
            unsealed hint, chained anchors from the level above, or
            :func:`enumerate_bootstraps` output.
        branch_limit: Cap on explored hypotheses; exceeding it raises
            :class:`CollisionError`.
        validate: Certify completed hypotheses by forward replay. Disabling
            skips certification (fastest path; only sensible with hints and
            collision-free tables).
        first_only: Stop at the first completed (and, if ``validate``,
            certified) outcome.
        accept: Optional outcome predicate. When given, only matching
            outcomes are collected and the search stops at the first match —
            sound whenever the predicate identifies the outcome uniquely
            (hint mode pins the start anchor and the inner-region digest, so
            replay determinism guarantees at most one match).
        witness_filter: Optional per-step anchor filter
            ``(step, anchor) -> bool`` from the envelope's keyed witnesses
            (decision D13); discards false hypotheses with probability
            255/256 per step, keeping hinted peels near-linear.
        use_states: Maintain incremental region bookkeeping (cached
            articulation-free sets, per-region :class:`RegionState`) across
            the search. Off forces the original from-scratch recomputes —
            identical outcomes, asymptotically slower.
        draws: Optional shared :class:`LevelDraws` buffer of ``key``'s
            level (the batched PRF plane). Hypotheses and replay
            certifications across the whole peel then pay for each distinct
            keyed draw once. ``None`` falls back to per-call draws.
        undo_log: Explore hypotheses on one checkpoint/rollback state with
            cross-budget hypothesis/removable/interval memos (the fast
            default). Off derives one cloned state per visited region
            instead — the PR 1-3 search discipline, kept as the
            equivalence oracle. Outcomes are byte-identical either way;
            the explored-work counter advances more slowly with the memos
            on (interval hits replay whole subtrees without re-counting
            them), so near the branch limit the undo path may complete a
            search the clone path would abort. The first deepening pass
            counts identically — interval entries cannot hit at budget 0.

    Returns:
        Certified outcomes. Empty when no hypothesis is consistent.
    """
    outer = frozenset(outer_region)
    if steps == 0:
        # Nothing to remove; the level's last-added equals its start anchor.
        zero_outcomes = [
            PeelOutcome(inner_region=outer, removed=(), start_anchor=bootstrap)
            for bootstrap in dict.fromkeys(bootstraps)
            if bootstrap in outer
        ]
        if accept is not None:
            zero_outcomes = [o for o in zero_outcomes if accept(o)][:1]
        return zero_outcomes
    if steps >= len(outer):
        raise DeanonymizationError(
            f"level claims {steps} additions but the region only has "
            f"{len(outer)} segments"
        )

    # The search combines four ideas:
    #
    # * *Suffix memoization* — different removal orders of the same segment
    #   set converge onto identical (region, target, step) states; the memo
    #   stores each state's consistent completions so shared subtrees are
    #   walked once instead of once per permutation.
    # * *Iterative deepening on hypothesis penalty* — algorithms tag
    #   backward hypotheses with a penalty (RPLE charges its global-fallback
    #   interpretation, decision D12). True chains use few penalised steps,
    #   so low-budget passes find them before the high-penalty hypothesis
    #   space (which is where false branches breed) is ever entered.
    # * *Budget-interval reuse* (undo-log path) — a node's completions are
    #   a step function of its remaining budget: they can only change at
    #   the penalty of a pruned hypothesis or at a child's own next flip
    #   point. Each computation therefore returns, besides its completions,
    #   the smallest remaining value at which they could differ, and a
    #   cross-budget memo replays unchanged subtrees as dict hits instead
    #   of re-walking them once per deepening pass. Values are identical by
    #   construction; only the explored-work counter advances more slowly,
    #   so a search near the branch limit may complete where the per-pass
    #   re-walk would abort (the first pass, where tiny limits trip, counts
    #   identically — budget 0 never produces an interval hit).
    # * *Certified early exit* — with an ``accept`` predicate (hint mode),
    #   replay determinism makes the first certified match unique, so the
    #   search stops there.
    explored = 0
    outcomes: List[PeelOutcome] = []
    seen_outcomes = set()
    budgets = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

    # Hinted peels walk one straight chain of small regions; below the
    # crossover the from-scratch recomputes win on constants.
    if (
        use_states
        and (witness_filter is not None or accept is not None)
        and len(outer) <= incremental_threshold(network)
    ):
        use_states = False

    # Incremental bookkeeping shared across the whole peel (all budgets).
    #
    # Fast path (``undo_log``): one live RegionState walks the search tree
    # by checkpoint/remove on descent and rollback on return — O(deg) per
    # edge, nothing proportional to |R|. Two value memos keyed by the
    # region frozensets make node revisits (sibling hypotheses within a
    # budget, whole-tree re-walks across deepening budgets) near-free:
    # ``backward_hypotheses`` tuples and removable sets are pure functions
    # of (region, removed segment, step). Capped; past the cap values are
    # recomputed but not stored (never evicted wholesale — the early, hot
    # entries such as the outer region and the true chain's prefixes stay
    # cached).
    #
    # Oracle path (``undo_log=False``): one RegionState per distinct
    # region, derived from its parent by clone + removal and cached — the
    # PR 1-3 discipline, byte-identical outcomes, kept for equivalence
    # testing and as the benchmark trajectory's midpoint.
    live: Optional[RegionState] = None
    hyp_cache: Dict[Tuple[frozenset, int, int], tuple] = {}
    removable_cache: Dict[frozenset, FrozenSet[int]] = {}
    _HYP_CACHE_CAP = 32768
    _REMOVABLE_CACHE_CAP = 8192
    compiled = network.compiled()
    side_neighbors = compiled.side_neighbors

    def _is_removable(region: frozenset, removing: int) -> bool:
        if regions_connected:
            # Clique shortcut: segments at one junction are pairwise
            # adjacent, so a member whose in-region neighbours all share
            # one endpoint can never disconnect a connected region — any
            # path through it reroutes inside the clique. O(deg), and it
            # answers the overwhelming majority of probes without ever
            # materialising the articulation set.
            at_a, at_b = side_neighbors[removing]
            if region.isdisjoint(at_a) or region.isdisjoint(at_b):
                return True
        removable = removable_cache.get(region)
        if removable is None:
            removable = frozenset(compiled.removable_members(region))
            if len(removable_cache) < _REMOVABLE_CACHE_CAP:
                removable_cache[region] = removable
        return removing in removable

    state_cache: Dict[frozenset, RegionState] = {}
    _PEEL_CACHE_CAP = 4096

    def _state_of(
        region: frozenset,
        parent: Optional[frozenset] = None,
        removed: Optional[int] = None,
    ) -> RegionState:
        region_state = state_cache.get(region)
        if region_state is None:
            parent_state = (
                state_cache.get(parent) if parent is not None else None
            )
            if parent_state is not None and removed is not None:
                # Deriving by clone + single removal is O(|R|) container
                # copies; a from-scratch build costs a full neighbour scan.
                region_state = parent_state.clone()
                region_state.remove(removed)
            else:
                region_state = RegionState.from_region(network, region)
            if len(state_cache) < _PEEL_CACHE_CAP:
                state_cache[region] = region_state
        return region_state

    regions_connected = False
    if use_states:
        # Building the outer state first also validates every segment id
        # (unknown ids raise UnknownSegmentError, not a bare KeyError).
        if undo_log:
            live = RegionState.from_region(network, outer)
        else:
            state_cache[outer] = RegionState.from_region(network, outer)
        # Every region the search visits is connected when the outer region
        # is: descent only ever crosses the removability gate. That unlocks
        # the O(deg) clique shortcut in ``_is_removable``; a disconnected
        # (tampered) outer region demotes every query to the full
        # articulation answer.
        regions_connected = compiled.is_connected(outer)

    # Cross-budget caches of the undo-log path, all keyed by the node
    # signature ``(region, removing, step)`` (pure functions of it):
    # the inner-region frozenset, and the budget-interval entries
    # ``(valid_from, bound, completions)`` — the node's completions are
    # valid verbatim for any remaining budget in ``[valid_from, bound)``.
    inf = float("inf")
    inner_cache: Dict[Tuple[frozenset, int, int], frozenset] = {}
    interval_memo: dict = {}

    for budget in budgets:
        memo: dict = {}

        def search(
            region: frozenset, removing: int, step: int, remaining: int
        ) -> Tuple[List[Tuple[frozenset, Tuple[int, ...], int]], float]:
            nonlocal explored
            node_key = (region, removing, step, remaining)
            result = memo.get(node_key)
            if result is not None:
                return result
            node_sig = (region, removing, step)
            if live is not None:
                cached = interval_memo.get(node_sig)
                if cached is not None:
                    valid_from, bound, completions = cached
                    if valid_from <= remaining < bound:
                        result = (completions, bound)
                        memo[node_key] = result
                        return result
            explored += 1
            if explored > branch_limit:
                raise CollisionError(key.level, explored)
            completions: List[Tuple[frozenset, Tuple[int, ...], int]] = []
            bound = inf
            if removing in region:
                inner = inner_cache.get(node_sig) if live is not None else None
                if inner is None:
                    inner = region - {removing}
                    if live is not None and len(inner_cache) < _HYP_CACHE_CAP:
                        inner_cache[node_sig] = inner
                if not use_states:
                    connected = network.is_connected_region(inner)
                elif live is not None:
                    connected = _is_removable(region, removing)
                else:
                    connected = _state_of(region).is_removable(removing)
                if inner and connected:
                    hypotheses: Optional[tuple] = None
                    if live is not None:
                        hypotheses = hyp_cache.get(node_sig)
                    # Descend the live state: the recursion below expects
                    # it to *be* the inner region. Skipped only when the
                    # node is a cached leaf (step 1), which never recurses
                    # and needs no state.
                    token = -1
                    if live is not None and (hypotheses is None or step > 1):
                        token = live.checkpoint()
                        live.remove(removing)
                    if hypotheses is None:
                        if live is not None:
                            state = live
                        elif use_states:
                            state = _state_of(inner, region, removing)
                        else:
                            state = None
                        hypotheses = algorithm.backward_hypotheses(
                            network, inner, removing, key, step, tolerance,
                            state=state, draws=draws,
                        )
                        if live is not None and len(hyp_cache) < _HYP_CACHE_CAP:
                            hyp_cache[node_sig] = hypotheses
                    if witness_filter is not None:
                        # The hypothesis is the anchor of forward step
                        # ``step``; its keyed witness must match. Survivors
                        # are re-ranked from zero — the filter removes the
                        # false crowd, so the first survivor must be free or
                        # a true chain would accumulate pre-filter ranks
                        # past any deepening budget.
                        hypotheses = tuple(
                            (anchor, index)
                            for index, (anchor, __) in enumerate(
                                (anchor, penalty)
                                for anchor, penalty in hypotheses
                                if witness_filter(step, anchor)
                            )
                        )
                    if step == 1:
                        for anchor, penalty in hypotheses:
                            if penalty <= remaining:
                                completions.append((inner, (removing,), anchor))
                            elif penalty < bound:
                                bound = penalty
                    else:
                        for anchor, penalty in hypotheses:
                            if penalty > remaining:
                                if penalty < bound:
                                    bound = penalty
                                continue
                            sub, sub_bound = search(
                                inner, anchor, step - 1, remaining - penalty
                            )
                            threshold = penalty + sub_bound
                            if threshold < bound:
                                bound = threshold
                            for inner2, suffix, start in sub:
                                completions.append(
                                    (inner2, (removing,) + suffix, start)
                                )
                    if token >= 0:
                        live.rollback(token)
            result = (completions, bound)
            memo[node_key] = result
            if live is not None:
                interval_memo[node_sig] = (remaining, bound, completions)
            return result

        for bootstrap in dict.fromkeys(bootstraps):
            for inner, removed_seq, start in search(outer, bootstrap, steps, budget)[0]:
                signature = (inner, removed_seq, start)
                if signature in seen_outcomes:
                    continue
                outcome = PeelOutcome(
                    inner_region=inner, removed=removed_seq, start_anchor=start
                )
                if accept is not None and not accept(outcome):
                    continue
                if validate and not _certify(
                    network, algorithm, key, outcome, tolerance, use_states,
                    draws=draws,
                ):
                    continue
                seen_outcomes.add(signature)
                outcomes.append(outcome)
                if first_only or accept is not None:
                    return outcomes
    return outcomes


def _certify(
    network: RoadNetwork,
    algorithm: CloakingAlgorithm,
    key: AccessKey,
    outcome: PeelOutcome,
    tolerance: ToleranceSpec,
    use_state: bool = True,
    draws: Optional[LevelDraws] = None,
) -> bool:
    """Forward-replay certification of a completed peel hypothesis."""
    replayed = replay_level(
        network,
        algorithm,
        key,
        outcome.inner_region,
        outcome.start_anchor,
        len(outcome.removed),
        tolerance,
        use_state=use_state,
        draws=draws,
    )
    return replayed == outcome.added_sequence
