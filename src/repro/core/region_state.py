"""Incrementally maintained cloaking-region state, with an undo log.

Every question the expansion and reversal hot paths ask about the current
region — *what is the frontier? how long is it? how big is its bounding box?
how many users are inside? which members can be removed without
disconnecting it?* — was originally answered by a from-scratch recompute
over the whole region, making each expansion step O(|R| * deg) and a level
of R additions O(R^2 * deg). :class:`RegionState` maintains all of those
answers under :meth:`add` / :meth:`remove` mutations instead:

* **frontier multiset** — per-candidate count of in-region neighbours, so
  the frontier updates in O(deg) per mutation and membership tests are O(1);
* **running total length** — O(1) per mutation (floating-point note below);
* **running bounding box** — O(1) growth on add; a removal that touches the
  boundary marks the box dirty and the next query rebuilds it lazily;
* **population count** — O(1) per mutation against the construction-time
  :class:`~repro.mobility.snapshot.PopulationSnapshot`;
* **length-ordered members** — the transition-table row ordering
  (``length_order``), maintained by binary insertion over the compiled
  plane's global length *ranks* (one int per member instead of a
  ``(length, id)`` tuple) so RGE never re-sorts the whole region per step;
* **removal bookkeeping** — the articulation-free member set, recomputed
  lazily with one Tarjan pass over the compiled CSR adjacency
  (O(|R| * deg)) and cached until the next mutation, which is what
  reversal's hypothesis enumeration consumes.

All per-segment lookups (neighbours, lengths, bbox extremes, length ranks)
come from the map's shared :class:`~repro.roadnet.compiled.CompiledNetwork`
plane, resolved once at construction.

**Undo log.** The reversal search explores hypothesised inner regions
depth-first: remove a segment, look backward, recurse, put it back. A
:meth:`clone` per hypothesis costs O(|R|) container copies even when the
branch dies immediately; the undo log makes backtracking O(changed)
instead. :meth:`checkpoint` arms an operation trail and returns a token;
every subsequent mutation appends its inverse bookkeeping (the segment,
plus the O(1) scalars a pure inverse cannot recover: the cached removable
set, the frontier tuple, the bbox extremes/dirty flag and the rounded
total); :meth:`rollback` pops the trail back to the token, restoring the
state — including the lazily cached answers — bit for bit. The clone path
remains as the equivalence oracle (see ``tests/core/test_undo_log.py``).

Floating-point note: naive float summation is order-dependent, and a
tolerance comparison that flips between the anonymizer's and the
de-anonymizer's summation order would break reversibility. The state
therefore maintains the total length *exactly* — every float length is a
dyadic rational, so a fixed-point integer accumulator at scale ``2**-1074``
is lossless under any add/remove order (see ``_scaled_exact``; it replaced
the former :class:`~fractions.Fraction` accumulator at identical semantics
and ~5x less per-mutation cost) — and exposes its correctly-rounded float.
:class:`~repro.core.profile.ToleranceSpec` resolves comparisons that land
within rounding distance of the bound against the exact value, so every
path — incremental, from-scratch, clone-derived, rolled-back — makes
identical decisions.

The state is deliberately *not* thread-safe and not tied to any algorithm:
the engine owns one state for the whole multi-level expansion, replay owns
one per certification, and the peel search owns one undo-logged state for
the whole hypothesis walk.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from fractions import Fraction
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import CloakingError
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.geometry import BoundingBox
from ..roadnet.graph import RoadNetwork

__all__ = ["RegionState", "exact_fraction"]

#: Exact-rational memo for float lengths/bounds. Segment lengths repeat
#: constantly (grids share one spacing), and ``Fraction(float)`` is the
#: costly part of exact accumulation.
_FRACTION_CACHE: Dict[float, Fraction] = {}
_FRACTION_CACHE_CAP = 65536


def exact_fraction(value: float) -> Fraction:
    """The exact rational value of a float (memoised)."""
    fraction = _FRACTION_CACHE.get(value)
    if fraction is None:
        if len(_FRACTION_CACHE) >= _FRACTION_CACHE_CAP:
            _FRACTION_CACHE.clear()
        fraction = Fraction(value)
        _FRACTION_CACHE[value] = fraction
    return fraction


#: Fixed-point scale of the exact length accumulator. Every finite float is
#: ``m / 2**k`` with ``k <= 1074`` (the subnormal limit), so integers at
#: scale ``2**-1074`` represent any sum of float lengths *exactly* —
#: big-int addition replaces :class:`Fraction` normalisation on the
#: per-mutation hot path (~5x cheaper), and ``n / _SCALE`` (CPython's
#: correctly-rounded int/int true division) recovers the same
#: correctly-rounded float total bit for bit.
_SCALE_BITS = 1074
_SCALE = 1 << _SCALE_BITS

#: Scaled-integer memo for float lengths (same role as the Fraction memo).
_SCALED_CACHE: Dict[float, int] = {}


def _scaled_exact(value: float) -> int:
    """``value`` as an exact integer multiple of ``2**-1074`` (memoised)."""
    scaled = _SCALED_CACHE.get(value)
    if scaled is None:
        if len(_SCALED_CACHE) >= _FRACTION_CACHE_CAP:
            _SCALED_CACHE.clear()
        numerator, denominator = value.as_integer_ratio()
        # Denominators of finite floats are powers of two dividing 2**1074.
        scaled = numerator * (_SCALE // denominator)
        _SCALED_CACHE[value] = scaled
    return scaled


class RegionState:
    """Mutable region over an immutable network with O(deg) updates.

    Args:
        network: The shared road map.
        members: Initial region members (added one by one).
        snapshot: Optional population snapshot; when given,
            :attr:`population` tracks the user count inside the region.

    The :attr:`members` set is exposed directly for zero-copy reads by the
    algorithms — callers must treat it as read-only and mutate only through
    :meth:`add` / :meth:`remove`.
    """

    def __init__(
        self,
        network: RoadNetwork,
        members: Iterable[int] = (),
        snapshot: Optional[PopulationSnapshot] = None,
    ) -> None:
        compiled = network.compiled()
        self._network = network
        self._compiled = compiled
        self._snapshot = snapshot
        self._neighbors = compiled.neighbor_map
        self._length_of = compiled.length_of
        self._rank_of = compiled.rank_of
        self._rank_to_id = compiled.rank_to_id
        self._seg_bounds = compiled.bounds_of
        self._members: set = set()
        self._frontier_counts: Dict[int, int] = {}
        self._frontier_cache: Optional[Tuple[int, ...]] = None
        self._exact_scaled = 0
        self._total_length = 0.0
        self._total_dirty = False
        self._population = 0
        #: Members as global length ranks, ascending — rank order equals
        #: the canonical (length, id) order, one int compare per step.
        self._by_length: List[int] = []
        self._min_x = self._min_y = float("inf")
        self._max_x = self._max_y = float("-inf")
        self._bbox_dirty = False
        self._removable: Optional[FrozenSet[int]] = None
        self._trail: Optional[list] = None
        for segment_id in members:
            self.add(segment_id)

    @classmethod
    def from_region(
        cls,
        network: RoadNetwork,
        region: AbstractSet[int],
        snapshot: Optional[PopulationSnapshot] = None,
    ) -> "RegionState":
        """A state initialised to an existing region (O(|region| * deg))."""
        return cls(network, region, snapshot=snapshot)

    def clone(self) -> "RegionState":
        """An independent copy — O(|region| + |frontier|) container copies,
        cheaper than a from-scratch rebuild (no neighbour scans, no
        re-sorting). The clone never inherits the undo trail: it is a
        snapshot, not a participant in the original's checkpoint stack.
        This is the reversal search's equivalence oracle; the search
        itself backtracks with :meth:`checkpoint` / :meth:`rollback`."""
        other = RegionState.__new__(RegionState)
        other._network = self._network
        other._compiled = self._compiled
        other._snapshot = self._snapshot
        other._neighbors = self._neighbors
        other._length_of = self._length_of
        other._rank_of = self._rank_of
        other._rank_to_id = self._rank_to_id
        other._seg_bounds = self._seg_bounds
        other._members = set(self._members)
        other._frontier_counts = dict(self._frontier_counts)
        other._frontier_cache = self._frontier_cache
        other._exact_scaled = self._exact_scaled
        other._total_length = self._total_length
        other._total_dirty = self._total_dirty
        other._population = self._population
        other._by_length = list(self._by_length)
        other._min_x = self._min_x
        other._min_y = self._min_y
        other._max_x = self._max_x
        other._max_y = self._max_y
        other._bbox_dirty = self._bbox_dirty
        other._removable = self._removable
        other._trail = None
        return other

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _base_add(self, segment_id: int, length: float, rank: int) -> None:
        """The self-inverse core of :meth:`add`: members, frontier counts,
        exact length, population and length ordering (everything
        :meth:`rollback` can undo by running the opposite base op)."""
        members = self._members
        members.add(segment_id)
        frontier_counts = self._frontier_counts
        frontier_counts.pop(segment_id, None)
        for neighbor in self._neighbors[segment_id]:
            if neighbor not in members:
                frontier_counts[neighbor] = frontier_counts.get(neighbor, 0) + 1
        self._exact_scaled += _scaled_exact(length)
        if self._snapshot is not None:
            self._population += self._snapshot.count_on(segment_id)
        insort(self._by_length, rank)

    def _base_remove(self, segment_id: int, length: float, rank: int) -> None:
        """The self-inverse core of :meth:`remove` (see :meth:`_base_add`)."""
        members = self._members
        members.discard(segment_id)
        frontier_counts = self._frontier_counts
        in_region_neighbors = 0
        for neighbor in self._neighbors[segment_id]:
            if neighbor in members:
                in_region_neighbors += 1
            else:
                count = frontier_counts.get(neighbor)
                if count is not None:
                    if count <= 1:
                        del frontier_counts[neighbor]
                    else:
                        frontier_counts[neighbor] = count - 1
        if in_region_neighbors:
            frontier_counts[segment_id] = in_region_neighbors
        self._exact_scaled -= _scaled_exact(length)
        if self._snapshot is not None:
            self._population -= self._snapshot.count_on(segment_id)
        index = bisect_left(self._by_length, rank)
        del self._by_length[index]

    def _log(self, was_add: bool, segment_id: int) -> None:
        """Append one trail entry: the op plus the O(1) scalars a pure
        inverse cannot recover (cached answers, bbox, rounded total)."""
        self._trail.append(
            (
                was_add,
                segment_id,
                self._removable,
                self._frontier_cache,
                self._min_x,
                self._min_y,
                self._max_x,
                self._max_y,
                self._bbox_dirty,
                self._total_length,
                self._total_dirty,
            )
        )

    def add(self, segment_id: int) -> None:
        """Add one segment to the region (raises if already inside)."""
        if segment_id in self._members:
            raise CloakingError(f"segment {segment_id} is already in the region")
        try:
            length = self._length_of[segment_id]
        except KeyError:
            self._network.segment_length(segment_id)  # raises UnknownSegmentError
            raise
        if self._trail is not None:
            self._log(True, segment_id)
        self._base_add(segment_id, length, self._rank_of[segment_id])
        self._total_dirty = True
        if not self._bbox_dirty:
            min_x, min_y, max_x, max_y = self._seg_bounds[segment_id]
            if min_x < self._min_x:
                self._min_x = min_x
            if max_x > self._max_x:
                self._max_x = max_x
            if min_y < self._min_y:
                self._min_y = min_y
            if max_y > self._max_y:
                self._max_y = max_y
        self._removable = None
        self._frontier_cache = None

    def remove(self, segment_id: int) -> None:
        """Remove one segment from the region (raises if not inside)."""
        if segment_id not in self._members:
            raise CloakingError(f"segment {segment_id} is not in the region")
        if self._trail is not None:
            self._log(False, segment_id)
        self._base_remove(
            segment_id, self._length_of[segment_id], self._rank_of[segment_id]
        )
        self._total_dirty = True
        if not self._bbox_dirty:
            min_x, min_y, max_x, max_y = self._seg_bounds[segment_id]
            if (
                min_x <= self._min_x
                or max_x >= self._max_x
                or min_y <= self._min_y
                or max_y >= self._max_y
            ):
                self._bbox_dirty = True
        self._removable = None
        self._frontier_cache = None

    # ------------------------------------------------------------------
    # undo log
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Arm the undo log (idempotent) and return a rollback token.

        Every mutation after a checkpoint is recorded; :meth:`rollback`
        with the token restores this exact state — maintained measures
        *and* lazily cached answers (removable set, frontier tuple, bbox)
        — in O(mutations since the token). Tokens nest like a stack:
        rolling back to an outer token discards inner ones.
        """
        trail = self._trail
        if trail is None:
            trail = self._trail = []
        return len(trail)

    def rollback(self, token: int) -> None:
        """Restore the state captured by ``token`` (see :meth:`checkpoint`).

        Raises :class:`CloakingError` when ``token`` does not designate a
        live checkpoint (never armed, or already rolled past).
        """
        trail = self._trail
        if trail is None or token > len(trail) or token < 0:
            raise CloakingError(f"no checkpoint at token {token}")
        length_of = self._length_of
        rank_of = self._rank_of
        while len(trail) > token:
            (
                was_add,
                segment_id,
                removable,
                frontier_cache,
                min_x,
                min_y,
                max_x,
                max_y,
                bbox_dirty,
                total_length,
                total_dirty,
            ) = trail.pop()
            length = length_of[segment_id]
            rank = rank_of[segment_id]
            if was_add:
                self._base_remove(segment_id, length, rank)
            else:
                self._base_add(segment_id, length, rank)
            self._removable = removable
            self._frontier_cache = frontier_cache
            self._min_x = min_x
            self._min_y = min_y
            self._max_x = max_x
            self._max_y = max_y
            self._bbox_dirty = bbox_dirty
            self._total_length = total_length
            self._total_dirty = total_dirty

    @property
    def trail_length(self) -> int:
        """Logged mutations since the first checkpoint (0 when unarmed)."""
        return len(self._trail) if self._trail is not None else 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def snapshot(self) -> Optional[PopulationSnapshot]:
        return self._snapshot

    @property
    def members(self) -> set:
        """The live member set — read-only by contract (no copy)."""
        return self._members

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._members

    @property
    def total_length(self) -> float:
        """Summed road length of the region, metres — the *correctly
        rounded* float of the exact sum, so it is independent of the
        add/remove order that produced this state.

        The rounding (an exact big-int division) runs lazily on first read
        after a mutation: only length-bounded tolerances ever read it, so
        segment-count-only workloads never pay for it.
        """
        if self._total_dirty:
            self._total_length = self._exact_scaled / _SCALE
            self._total_dirty = False
        return self._total_length

    @property
    def exact_total_length(self) -> Fraction:
        """The exact rational total length (tolerance tie-breaks)."""
        return Fraction(self._exact_scaled, _SCALE)

    @property
    def population(self) -> int:
        """Users inside the region per the construction-time snapshot
        (0 when no snapshot was given)."""
        return self._population

    def is_frontier(self, segment_id: int) -> bool:
        """Whether ``segment_id`` is outside the region but adjacent to it."""
        return segment_id in self._frontier_counts

    @property
    def frontier_map(self) -> Dict[int, int]:
        """The live frontier multiset ``{candidate: in-region neighbour
        count}`` — read-only by contract, like :attr:`members`. Hot loops
        (RPLE slot probing) test membership against it directly instead of
        paying a method call per probe."""
        return self._frontier_counts

    def frontier(self) -> Tuple[int, ...]:
        """The candidate frontier, ascending ids (matches
        :meth:`RoadNetwork.frontier` exactly). Cached until the next
        mutation — backward enumerations read it repeatedly."""
        cached = self._frontier_cache
        if cached is None:
            cached = tuple(sorted(self._frontier_counts))
            self._frontier_cache = cached
        return cached

    def frontier_counts(self) -> Dict[int, int]:
        """Per-candidate in-region neighbour counts (a fresh dict)."""
        return dict(self._frontier_counts)

    def segments_by_length(self) -> Tuple[int, ...]:
        """Members ordered by (length, id) — the canonical transition-table
        row order (:func:`repro.core.transition_table.length_order`)."""
        return tuple(map(self._rank_to_id.__getitem__, self._by_length))

    def members_by_length_slice(self, start: int, stride: int) -> Tuple[int, ...]:
        """Members at positions ``start, start + stride, ...`` of the
        (length, id) ordering — the backward transition's row walk
        (:func:`repro.core.transition_table.state_backward`), read
        straight off the maintained ordering without materialising it."""
        return tuple(
            map(self._rank_to_id.__getitem__, self._by_length[start::stride])
        )

    def length_rank(self, segment_id: int) -> int:
        """The member's 0-based position in the (length, id) ordering."""
        if segment_id not in self._members:
            raise CloakingError(f"segment {segment_id} is not in the region")
        return bisect_left(self._by_length, self._rank_of[segment_id])

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _rebuild_bbox(self) -> None:
        self._min_x = self._min_y = float("inf")
        self._max_x = self._max_y = float("-inf")
        bounds = self._seg_bounds
        for segment_id in self._members:
            min_x, min_y, max_x, max_y = bounds[segment_id]
            if min_x < self._min_x:
                self._min_x = min_x
            if max_x > self._max_x:
                self._max_x = max_x
            if min_y < self._min_y:
                self._min_y = min_y
            if max_y > self._max_y:
                self._max_y = max_y
        self._bbox_dirty = False

    def bounding_box(self) -> BoundingBox:
        """Tightest box around the region (raises on an empty region,
        matching :meth:`RoadNetwork.bounding_box`)."""
        if not self._members:
            raise ValueError("cannot bound an empty region")
        if self._bbox_dirty:
            self._rebuild_bbox()
        return BoundingBox(self._min_x, self._min_y, self._max_x, self._max_y)

    def diagonal(self) -> float:
        """The region bounding-box diagonal, metres."""
        box = self.bounding_box()
        return box.diagonal

    def diagonal_after_add(self, segment_id: int) -> float:
        """The bounding-box diagonal the region would have after adding
        ``segment_id`` — O(1), without mutating the state.

        min/max are exact, so this equals the from-scratch diagonal of
        ``region | {segment_id}`` bit for bit.
        """
        seg_min_x, seg_min_y, seg_max_x, seg_max_y = self._seg_bounds[segment_id]
        if not self._members:
            return BoundingBox(seg_min_x, seg_min_y, seg_max_x, seg_max_y).diagonal
        if self._bbox_dirty:
            self._rebuild_bbox()
        min_x = seg_min_x if seg_min_x < self._min_x else self._min_x
        max_x = seg_max_x if seg_max_x > self._max_x else self._max_x
        min_y = seg_min_y if seg_min_y < self._min_y else self._min_y
        max_y = seg_max_y if seg_max_y > self._max_y else self._max_y
        return BoundingBox(min_x, min_y, max_x, max_y).diagonal

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the region induces a connected subgraph."""
        return self._compiled.is_connected(self._members)

    def removable_members(self) -> FrozenSet[int]:
        """Members whose removal keeps the region connected.

        One Tarjan articulation pass over the compiled CSR plane, cached
        until the next mutation (and *restored* by :meth:`rollback`, so a
        backtracking search re-reads earlier regions' answers for free) —
        reversal's hypothesis enumeration asks this for many candidates of
        the same region, so the amortised cost per query is O(1).
        """
        if self._removable is None:
            self._removable = frozenset(
                self._compiled.removable_members(self._members)
            )
        return self._removable

    def is_removable(self, segment_id: int) -> bool:
        """Whether removing ``segment_id`` keeps the region connected."""
        return segment_id in self.removable_members()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegionState(members={len(self._members)}, "
            f"frontier={len(self._frontier_counts)}, "
            f"length={self.total_length:.1f})"
        )
