"""User-defined privacy profiles: ``(delta_k, delta_l, sigma_s)`` per level.

Paper, Section II: each anonymization request carries a personalized profile.
In the multi-level model the profile holds one entry per privacy level
``L^i`` (``1 <= i <= N-1``); level ``L^0`` is the user's own segment and needs
no entry. Every level specifies:

* ``delta_k`` — location k-anonymity: minimum users inside the region,
* ``delta_l`` — segment l-diversity: minimum segments in the region
  (ReverseCloak "guarantees not only the location k-anonymization but also
  the segment l-diversity privacy protection", Section III),
* ``sigma_s`` — the maximum spatial resolution bounding region growth.

Higher levels must be at least as private as lower ones (monotonically
non-decreasing ``delta_k``/``delta_l``, non-tightening tolerance), matching
the access-controlled semantics where lower privileges see higher anonymity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ProfileError
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork
from .region_state import exact_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .region_state import RegionState

__all__ = ["ToleranceSpec", "LevelRequirement", "PrivacyProfile"]


@dataclass(frozen=True)
class ToleranceSpec:
    """The maximum spatial resolution ``sigma_s`` of one privacy level.

    A region *fits* the tolerance when every enabled bound holds. At least
    one bound must be set — an unbounded cloaking region would let the
    anonymizer walk the whole map, which the paper explicitly prevents
    ("to bound the size of the cloaking region that has a direct influence on
    the performance of the anonymous query processing technique").

    Attributes:
        max_segments: Cap on the number of segments in the region.
        max_total_length: Cap on summed road length, metres.
        max_diagonal: Cap on the region bounding-box diagonal, metres.
    """

    max_segments: Optional[int] = None
    max_total_length: Optional[float] = None
    max_diagonal: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.max_segments is None
            and self.max_total_length is None
            and self.max_diagonal is None
        ):
            raise ProfileError("tolerance must set at least one bound")
        if self.max_segments is not None and self.max_segments < 1:
            raise ProfileError(f"max_segments must be >= 1, got {self.max_segments}")
        if self.max_total_length is not None and self.max_total_length <= 0:
            raise ProfileError(
                f"max_total_length must be positive, got {self.max_total_length}"
            )
        if self.max_diagonal is not None and self.max_diagonal <= 0:
            raise ProfileError(f"max_diagonal must be positive, got {self.max_diagonal}")

    @staticmethod
    def _length_exceeds(rounded_total: float, exact_lengths, bound: float) -> bool:
        """Whether the exact total length exceeds ``bound``.

        ``rounded_total`` must be the *correctly rounded* float of the true
        sum (``math.fsum`` of the lengths, or a maintained exact
        accumulator). A correctly-rounded total that differs from the bound
        already decides the comparison; only an exact tie falls back to
        rational arithmetic (``exact_lengths`` is a callable producing the
        exact :class:`~fractions.Fraction` total, evaluated lazily). This
        makes the decision independent of summation order — essential,
        because anonymizer and de-anonymizer sum the same region along
        different paths and must agree on every candidate.
        """
        if rounded_total != bound:
            return rounded_total > bound
        return exact_lengths() > exact_fraction(bound)

    def fits(self, network: RoadNetwork, region: AbstractSet[int]) -> bool:
        """Whether ``region`` respects every enabled bound."""
        if not region:
            return True
        if self.max_segments is not None and len(region) > self.max_segments:
            return False
        if self.max_total_length is not None:
            lengths = [network.segment_length(sid) for sid in region]
            if self._length_exceeds(
                math.fsum(lengths),
                lambda: sum(map(exact_fraction, lengths)),
                self.max_total_length,
            ):
                return False
        if (
            self.max_diagonal is not None
            and network.bounding_box(region).diagonal > self.max_diagonal
        ):
            return False
        return True

    def fits_state(self, state: "RegionState") -> bool:
        """:meth:`fits` evaluated against a maintained region state — O(1).

        Semantically identical to ``fits(state.network, state.members)``;
        the running measures replace the from-scratch recomputes.
        """
        if not len(state):
            return True
        if self.max_segments is not None and len(state) > self.max_segments:
            return False
        if self.max_total_length is not None and self._length_exceeds(
            state.total_length,
            lambda: state.exact_total_length,
            self.max_total_length,
        ):
            return False
        if self.max_diagonal is not None and state.diagonal() > self.max_diagonal:
            return False
        return True

    def fits_after_add(self, state: "RegionState", candidate: int) -> bool:
        """Whether ``state``'s region would still fit after adding
        ``candidate`` — the O(1) delta form of
        ``fits(network, region | {candidate})``.

        ``candidate`` must be outside the region (frontier segments always
        are); segment count and bounding box extend exactly, and the total
        length comparison is resolved exactly at the bound, so the answer
        equals ``fits`` on the extended region for every summation order.
        """
        if self.max_segments is not None and len(state) + 1 > self.max_segments:
            return False
        if self.max_total_length is not None:
            bound = self.max_total_length
            extra = state.network.segment_length(candidate)
            # One float add on the correctly-rounded base: off by at most a
            # couple of ulps from the exact extended total. Decide in float
            # when clearly away from the bound; within the (generous)
            # margin, fall back to the exact rational comparison so the
            # decision matches fits()/fits_state() bit for bit.
            approx = state.total_length + extra
            margin = 1e-12 * (abs(approx) + abs(bound) + 1.0)
            if approx > bound + margin:
                return False
            if approx >= bound - margin:
                exact = state.exact_total_length + exact_fraction(extra)
                if exact > exact_fraction(bound):
                    return False
        if (
            self.max_diagonal is not None
            and state.diagonal_after_add(candidate) > self.max_diagonal
        ):
            return False
        return True

    def uniform_fit_after_add(self, state: "RegionState") -> Optional[bool]:
        """The one answer :meth:`fits_after_add` gives for *every* candidate
        of ``state``'s current region, or ``None`` when the answer depends
        on the candidate.

        With a segment-count-only tolerance, adding any single segment
        grows the count by exactly one, so the delta check is uniform
        across candidates; length and diagonal bounds depend on *which*
        segment is added. Hot paths (candidate filtering, RPLE slot
        probing) evaluate this once per step instead of once per candidate
        — the answer, and therefore every envelope byte, is unchanged.
        """
        if self.max_total_length is not None or self.max_diagonal is not None:
            return None
        return self.max_segments is None or len(state) + 1 <= self.max_segments

    def at_least_as_loose_as(self, other: "ToleranceSpec") -> bool:
        """Whether any region fitting ``self``'s bounds ... is a superset
        condition: every bound of ``self`` is absent or >= ``other``'s."""

        def loose(mine, theirs) -> bool:
            if mine is None:
                return True
            if theirs is None:
                return False
            return mine >= theirs

        return (
            loose(self.max_segments, other.max_segments)
            and loose(self.max_total_length, other.max_total_length)
            and loose(self.max_diagonal, other.max_diagonal)
        )

    def to_dict(self) -> dict:
        return {
            "max_segments": self.max_segments,
            "max_total_length": self.max_total_length,
            "max_diagonal": self.max_diagonal,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ToleranceSpec":
        if not isinstance(document, dict):
            raise ProfileError(
                f"tolerance document must be a dict, got {type(document).__name__}"
            )
        max_segments = document.get("max_segments")
        max_total_length = document.get("max_total_length")
        max_diagonal = document.get("max_diagonal")
        try:
            return cls(
                max_segments=None if max_segments is None else int(max_segments),
                max_total_length=(
                    None if max_total_length is None else float(max_total_length)
                ),
                max_diagonal=None if max_diagonal is None else float(max_diagonal),
            )
        except (TypeError, ValueError) as exc:
            raise ProfileError(f"malformed tolerance document: {exc}") from None


@dataclass(frozen=True)
class LevelRequirement:
    """The privacy requirement ``(delta_k, delta_l, sigma_s)`` of one level."""

    k: int
    l: int
    tolerance: ToleranceSpec

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ProfileError(f"delta_k must be >= 1, got {self.k}")
        if self.l < 1:
            raise ProfileError(f"delta_l must be >= 1, got {self.l}")
        if (
            self.tolerance.max_segments is not None
            and self.tolerance.max_segments < self.l
        ):
            raise ProfileError(
                f"tolerance max_segments={self.tolerance.max_segments} cannot "
                f"satisfy delta_l={self.l}"
            )

    def satisfied_by(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        snapshot: PopulationSnapshot,
        state: Optional["RegionState"] = None,
    ) -> bool:
        """Whether ``region`` meets this requirement for ``snapshot``.

        With a maintained ``state`` (built against the same snapshot) the
        check is O(1): running member/population counts and running
        tolerance measures replace the per-call recomputes.
        """
        if state is not None:
            if len(state) < self.l:
                return False
            if state.population < self.k:
                return False
            return self.tolerance.fits_state(state)
        if len(region) < self.l:
            return False
        if snapshot.count_in_region(region) < self.k:
            return False
        return self.tolerance.fits(network, region)

    def to_dict(self) -> dict:
        return {"k": self.k, "l": self.l, "tolerance": self.tolerance.to_dict()}

    @classmethod
    def from_dict(cls, document: dict) -> "LevelRequirement":
        if not isinstance(document, dict):
            raise ProfileError(
                f"level-requirement document must be a dict, got {type(document).__name__}"
            )
        try:
            k = int(document["k"])
            l = int(document["l"])
            tolerance_doc = document["tolerance"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed level-requirement document: {exc}") from None
        return cls(k=k, l=l, tolerance=ToleranceSpec.from_dict(tolerance_doc))


class PrivacyProfile:
    """The user-defined multi-level privacy profile ``(delta_k^i, sigma_s^i)``.

    ``requirements[0]`` belongs to privacy level 1, and so on; the number of
    privacy levels ``N`` equals ``len(requirements) + 1`` (level 0 is the raw
    segment). Levels must be monotone: a higher level never demands *less*
    anonymity nor a *tighter* tolerance than a lower one.

    Example:
        >>> profile = PrivacyProfile.uniform(levels=3, base_k=5, k_step=5,
        ...                                  base_l=4, l_step=2,
        ...                                  max_segments=60)
        >>> profile.level_count
        3
        >>> profile.requirement(2).k
        10
    """

    def __init__(self, requirements: Sequence[LevelRequirement]) -> None:
        if not requirements:
            raise ProfileError("a profile needs at least one level")
        self._requirements: Tuple[LevelRequirement, ...] = tuple(requirements)
        for lower, higher in zip(self._requirements, self._requirements[1:]):
            if higher.k < lower.k:
                raise ProfileError(
                    f"delta_k must be non-decreasing across levels "
                    f"({higher.k} after {lower.k})"
                )
            if higher.l < lower.l:
                raise ProfileError(
                    f"delta_l must be non-decreasing across levels "
                    f"({higher.l} after {lower.l})"
                )
            if not higher.tolerance.at_least_as_loose_as(lower.tolerance):
                raise ProfileError(
                    "tolerance must not tighten at higher levels"
                )

    @classmethod
    def uniform(
        cls,
        levels: int,
        base_k: int,
        k_step: int,
        base_l: int = 2,
        l_step: int = 1,
        max_segments: Optional[int] = None,
        max_total_length: Optional[float] = None,
        max_diagonal: Optional[float] = None,
    ) -> "PrivacyProfile":
        """A profile whose ``k``/``l`` grow linearly per level with one shared
        tolerance — the demo GUI's "Default setting" shape."""
        if levels < 1:
            raise ProfileError(f"need at least one level, got {levels}")
        if max_segments is None and max_total_length is None and max_diagonal is None:
            max_segments = base_l + l_step * (levels - 1) + 8 * levels + base_k
        tolerance = ToleranceSpec(
            max_segments=max_segments,
            max_total_length=max_total_length,
            max_diagonal=max_diagonal,
        )
        return cls(
            [
                LevelRequirement(
                    k=base_k + k_step * index,
                    l=base_l + l_step * index,
                    tolerance=tolerance,
                )
                for index in range(levels)
            ]
        )

    @property
    def level_count(self) -> int:
        """Number of keyed privacy levels (``N - 1`` in the paper's notation)."""
        return len(self._requirements)

    @property
    def total_levels(self) -> int:
        """``N``: keyed levels plus the raw level ``L^0``."""
        return len(self._requirements) + 1

    def requirement(self, level: int) -> LevelRequirement:
        """The requirement of privacy level ``level`` (1-based)."""
        if not 1 <= level <= self.level_count:
            raise ProfileError(
                f"level must be in 1..{self.level_count}, got {level}"
            )
        return self._requirements[level - 1]

    def requirements(self) -> Tuple[LevelRequirement, ...]:
        return self._requirements

    def to_dict(self) -> dict:
        return {"levels": [req.to_dict() for req in self._requirements]}

    @classmethod
    def from_dict(cls, document: dict) -> "PrivacyProfile":
        if not isinstance(document, dict) or not isinstance(
            document.get("levels"), list
        ):
            raise ProfileError(
                "malformed profile document: expected {'levels': [...]}"
            )
        return cls([LevelRequirement.from_dict(item) for item in document["levels"]])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrivacyProfile):
            return NotImplemented
        return self._requirements == other._requirements

    def __repr__(self) -> str:
        parts = ", ".join(
            f"L{index}(k={req.k},l={req.l})"
            for index, req in enumerate(self._requirements, start=1)
        )
        return f"PrivacyProfile({parts})"
