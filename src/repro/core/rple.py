"""Reversible Pre-assignment-based Local Expansion (RPLE), Section III-B.

RPLE splits the work into two phases:

1. **Pre-assignment** (paper Algorithm 1, :class:`Preassignment`): for every
   segment ``s`` build a forward transition list ``FT[s]`` and a backward
   list ``BT[sp]`` of length ``T``, greedily pairing each segment with nearby
   segments in proximity order such that::

       FT[s][q] = sp  <=>  BT[sp][q] = s

   Both lists share the slot index ``q``, so the pair assignment is
   *collision-free by construction*: given the added segment ``sp`` and the
   slot ``q``, the predecessor is uniquely ``BT[sp][q]``. The lists are a
   pure function of ``(network, T)`` — anonymizer and de-anonymizer compute
   identical copies with no shared state.

2. **Cloaking**: from anchor ``s``, draw ``R``; the slot is ``R mod T`` and
   the next segment is ``FT[s][R mod T]`` (the paper's Figure 3 example,
   ``index of s14 = R_i mod 6``). When a slot is empty, already inside the
   region, or breaks the tolerance, the step redraws with the next attempt
   (decision D5); the backward pass replays the identical attempt sequence
   and accepts an anchor hypothesis only if the forward prefix from that
   anchor would have failed every earlier attempt — making false hypotheses
   detectable and rare (experiment E11 measures the residue).

   A purely local expansion can *dead-end*: every target in the anchor's
   list may already be inside the region (the rate grows with region size).
   Rather than failing the request, a dead-anchor step falls back to one
   *global* RGE-style transition-table step (decision D12) — "the links
   ... are rebuilt on the fly" exactly as the paper describes for RGE. The
   mode of a step is a pure function of the anchor's *deadness* against the
   pre-fallback region, which both protocol sides compute identically: the
   backward pass tries the local interpretation (``BT`` lookup, anchor must
   be alive) and the global one (table row lookup, anchor must be dead),
   and forward replay certifies the survivors. Fan-out stays bounded by a
   couple of hypotheses per step.

RPLE trades memory for time: expansion touches only ``T``-slot lists
(fast, local), at the cost of ``O(E * T)`` persistent entries (experiment
E7 reproduces the stated trade-off against RGE).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import AbstractSet, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CloakingError, PreassignmentError
from ..keys.keys import AccessKey
from ..roadnet.compiled import geometry_digest
from ..roadnet.graph import RoadNetwork
from ..roadnet.paths import segment_hop_distances
from .algorithm import (
    CloakingAlgorithm,
    LevelDraws,
    eligible_candidates,
    keyed_draw,
)
from .profile import ToleranceSpec
from .region_state import RegionState
from .transition_table import (
    TransitionTable,
    state_backward,
    state_forward,
)

__all__ = ["Preassignment", "ReversiblePreassignmentExpansion", "DEFAULT_LIST_LENGTH"]

#: Default transition-list length ``T``. Figure 3 shows ``T = 6``; 8 covers
#: the degree distribution of grid and Delaunay maps with headroom.
DEFAULT_LIST_LENGTH = 8

#: Pre-assignment memo keyed by ``(geometry digest, T, max_hops)``. The
#: tables are a pure function of that key — the *geometry* digest, not the
#: wire ``network_digest``: proximity order ranks by midpoint distance, so
#: two maps agreeing on topology but not coordinates must not share tables.
#: Every de-anonymization request (``algorithm_for_envelope``) reuses them
#: instead of rebuilding the O(E * T) structure per call. Small LRU (the
#: bound, not a wholesale clear, is what keeps a long-running service from
#: growing without limit while the hot entry stays resident): each entry
#: pins its network. Guarded by a lock — concurrent server threads share it.
_PREASSIGNMENT_CACHE: "OrderedDict[Tuple[str, int, Optional[int]], Preassignment]" = (
    OrderedDict()
)
_PREASSIGNMENT_CACHE_SIZE = 8
_PREASSIGNMENT_CACHE_LOCK = threading.Lock()


class Preassignment:
    """The pre-assigned forward/backward transition lists (Algorithm 1).

    Args:
        network: The road map.
        list_length: ``T``, the number of slots per segment.
        max_hops: Bound on the proximity search radius (segment hops) when
            collecting each segment's neighbouring list. ``None`` expands
            until the list is full or the component is exhausted. The paper's
            Algorithm 1 nominally scans all ``E`` segments; bounding the scan
            changes nothing for realistic ``T`` (nearby segments fill the
            slots first) and keeps pre-assignment near-linear.
    """

    def __init__(
        self,
        network: RoadNetwork,
        list_length: int = DEFAULT_LIST_LENGTH,
        max_hops: Optional[int] = 4,
    ) -> None:
        if list_length < 1:
            raise PreassignmentError(f"list_length must be >= 1, got {list_length}")
        if max_hops is not None and max_hops < 1:
            raise PreassignmentError(f"max_hops must be >= 1 or None, got {max_hops}")
        self._network = network
        self._list_length = list_length
        self._max_hops = max_hops
        self._forward: Dict[int, List[Optional[int]]] = {}
        self._backward: Dict[int, List[Optional[int]]] = {}
        self._assign()
        # Freeze the finished lists: accessors hand out these shared tuples
        # (the lists never mutate after assignment), so the per-step lookup
        # loops stop paying a fresh tuple construction per call.
        self._forward_frozen: Dict[int, Tuple[Optional[int], ...]] = {
            sid: tuple(slots) for sid, slots in self._forward.items()
        }
        self._backward_frozen: Dict[int, Tuple[Optional[int], ...]] = {
            sid: tuple(slots) for sid, slots in self._backward.items()
        }

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _neighboring_list(self, segment_id: int) -> List[int]:
        """The segment's neighbouring list ``NL`` in proximity order
        (hop distance, then midpoint distance, then id — decision D4)."""
        hops = segment_hop_distances(self._network, segment_id, self._max_hops)
        origin_mid = self._network.segment_midpoint(segment_id)
        others = [sid for sid in hops if sid != segment_id]
        others.sort(
            key=lambda sid: (
                hops[sid],
                origin_mid.distance_to(self._network.segment_midpoint(sid)),
                sid,
            )
        )
        return others

    def _assign(self) -> None:
        length = self._list_length
        for segment_id in self._network.segment_ids():
            self._forward[segment_id] = [None] * length
            self._backward[segment_id] = [None] * length
        for segment_id in self._network.segment_ids():
            forward = self._forward[segment_id]
            for potential in self._neighboring_list(segment_id):
                if all(slot is not None for slot in forward):
                    break
                backward = self._backward[potential]
                shared_empty = next(
                    (
                        slot
                        for slot in range(length)
                        if forward[slot] is None and backward[slot] is None
                    ),
                    None,
                )
                if shared_empty is not None:
                    forward[shared_empty] = potential
                    backward[shared_empty] = segment_id

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def list_length(self) -> int:
        """``T`` — the slot count of every transition list."""
        return self._list_length

    @property
    def max_hops(self) -> Optional[int]:
        return self._max_hops

    def forward_list(self, segment_id: int) -> Tuple[Optional[int], ...]:
        """``FT[segment_id]`` (``None`` marks an empty slot)."""
        try:
            return self._forward_frozen[segment_id]
        except KeyError:
            raise PreassignmentError(f"segment {segment_id} not pre-assigned") from None

    def backward_list(self, segment_id: int) -> Tuple[Optional[int], ...]:
        """``BT[segment_id]``."""
        try:
            return self._backward_frozen[segment_id]
        except KeyError:
            raise PreassignmentError(f"segment {segment_id} not pre-assigned") from None

    def assigned_entries(self) -> int:
        """Total non-empty slots across both tables (memory proxy, E7)."""
        forward = sum(
            1 for slots in self._forward.values() for slot in slots if slot is not None
        )
        backward = sum(
            1 for slots in self._backward.values() for slot in slots if slot is not None
        )
        return forward + backward

    def memory_bytes(self) -> int:
        """Approximate resident size of the tables: 8 bytes per slot
        (segment id or empty marker), both directions."""
        return 8 * 2 * self._list_length * self._network.segment_count

    def verify_symmetry(self) -> bool:
        """Check the collision-freedom invariant
        ``FT[s][q] = sp <=> BT[sp][q] = s`` over the whole map."""
        for segment_id, slots in self._forward.items():
            for slot, target in enumerate(slots):
                if target is not None and self._backward[target][slot] != segment_id:
                    return False
        for segment_id, slots in self._backward.items():
            for slot, source in enumerate(slots):
                if source is not None and self._forward[source][slot] != segment_id:
                    return False
        return True


class ReversiblePreassignmentExpansion(CloakingAlgorithm):
    """The RPLE algorithm bound to one pre-assignment.

    Construct with :meth:`for_network` on both sides of the protocol; the
    pre-assignment is deterministic so both constructions agree.
    """

    name = "rple"

    def __init__(self, preassignment: Preassignment) -> None:
        self._pre = preassignment
        # Redraw budget per step: enough for the keyed slot sequence to
        # visit every slot with overwhelming probability (coupon collector
        # on T slots needs ~T ln T draws; 16T gives ample slack).
        self._max_attempts = 16 * preassignment.list_length

    @classmethod
    def for_network(
        cls,
        network: RoadNetwork,
        list_length: int = DEFAULT_LIST_LENGTH,
        max_hops: Optional[int] = 4,
        cache: bool = True,
    ) -> "ReversiblePreassignmentExpansion":
        """Run pre-assignment on ``network`` and wrap it.

        Pre-assignment is a pure function of ``(network, list_length,
        max_hops)``, so the tables are memoized per network digest by
        default — repeated engine constructions (one per de-anonymization
        request in a server) stop paying the O(E * T) build. Pass
        ``cache=False`` to force a fresh build.
        """
        if not cache:
            return cls(Preassignment(network, list_length, max_hops))
        key = (geometry_digest(network), list_length, max_hops)
        with _PREASSIGNMENT_CACHE_LOCK:
            pre = _PREASSIGNMENT_CACHE.get(key)
            if pre is not None:
                _PREASSIGNMENT_CACHE.move_to_end(key)
        if pre is None:
            # Build outside the lock (seconds on large maps); a concurrent
            # duplicate build is wasted work, never wrong — the tables are
            # a pure function of the key.
            pre = Preassignment(network, list_length, max_hops)
            with _PREASSIGNMENT_CACHE_LOCK:
                existing = _PREASSIGNMENT_CACHE.get(key)
                if existing is not None:
                    pre = existing
                    _PREASSIGNMENT_CACHE.move_to_end(key)
                else:
                    _PREASSIGNMENT_CACHE[key] = pre
                    while len(_PREASSIGNMENT_CACHE) > _PREASSIGNMENT_CACHE_SIZE:
                        _PREASSIGNMENT_CACHE.popitem(last=False)
        return cls(pre)

    @property
    def preassignment(self) -> Preassignment:
        return self._pre

    def params(self) -> dict:
        return {
            "list_length": self._pre.list_length,
            "max_hops": self._pre.max_hops,
        }

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def _slot_valid(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        target: Optional[int],
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        fits_hint: Optional[bool] = None,
    ) -> bool:
        """Whether a forward slot target is usable from the current region.

        A target must be a *frontier* segment — outside the region but
        sharing a junction with it — so RPLE regions stay connected like
        RGE's (pre-assigned lists may pair segments up to ``max_hops`` apart;
        distant pairs only become usable once the region reaches them). The
        identical predicate runs in the backward replay guard, which is what
        makes redraws reversible.

        With a maintained ``state`` the frontier test and the tolerance
        check are O(1) instead of O(|region|). ``fits_hint`` is the step's
        precomputed :meth:`ToleranceSpec.uniform_fit_after_add` answer
        (count-only tolerances give every candidate the same one); callers
        must pass it only for probes against the state's current region.
        """
        if target is None:
            return False
        if state is not None:
            if not state.is_frontier(target):
                return False
            if fits_hint is not None:
                return fits_hint
            return tolerance.fits_after_add(state, target)
        if target in region:
            return False
        if not any(neighbor in region for neighbor in network.neighbors(target)):
            return False
        return tolerance.fits(network, set(region) | {target})

    def _anchor_alive(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        fits_hint: Optional[bool] = None,
    ) -> bool:
        """Whether any slot of ``anchor``'s forward list can extend the
        region. A pure function of (anchor, region, tolerance) — both
        protocol sides evaluate it identically."""
        if state is not None and fits_hint is not None:
            # Uniform tolerance answer: a slot is valid iff it is a
            # frontier segment — skip the per-slot _slot_valid dispatch
            # (C-level dict containment against the live frontier map).
            if not fits_hint:
                return False
            frontier_map = state.frontier_map
            return any(
                target is not None and target in frontier_map
                for target in self._pre.forward_list(anchor)
            )
        return any(
            self._slot_valid(
                network, region, target, tolerance, state=state,
                fits_hint=fits_hint,
            )
            for target in self._pre.forward_list(anchor)
        )

    def _global_fallback_forward(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> int:
        """One RGE-style table step for a dead local anchor (decision D12)."""
        candidates = eligible_candidates(network, region, tolerance, state=state)
        if not candidates:
            self._raise_no_candidates(network, region, step, key.level, state=state)
        pick = draws.draw(step) if draws is not None else keyed_draw(key, step)
        if state is not None:
            return state_forward(network, state, candidates, anchor, pick)
        table = TransitionTable(network, set(region), set(candidates))
        return table.forward(anchor, pick)

    def forward_step(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> int:
        if anchor not in region:
            raise CloakingError(
                f"anchor {anchor} is not inside the region at step {step}"
            )
        # One uniform tolerance answer per step (count-only tolerances);
        # valid for every probe below because the region does not change
        # until the step's segment is returned and added by the engine.
        fits_hint = (
            tolerance.uniform_fit_after_add(state) if state is not None else None
        )
        if not self._anchor_alive(
            network, region, anchor, tolerance, state=state, fits_hint=fits_hint
        ):
            return self._global_fallback_forward(
                network, region, anchor, key, step, tolerance, state=state,
                draws=draws,
            )
        forward = self._pre.forward_list(anchor)
        length = self._pre.list_length
        uniform_ok = fits_hint is True and state is not None
        is_frontier = state.is_frontier if state is not None else None
        for attempt in range(self._max_attempts):
            value = (
                draws.draw(step, attempt)
                if draws is not None
                else keyed_draw(key, step, attempt)
            )
            slot = value % length
            target = forward[slot]
            if uniform_ok:
                # _anchor_alive said some slot is valid and the tolerance
                # answer is uniformly True, so validity is the frontier test.
                if target is not None and is_frontier(target):
                    return target
                continue
            if self._slot_valid(
                network, region, target, tolerance, state=state,
                fits_hint=fits_hint,
            ):
                assert target is not None
                return target
        raise CloakingError(
            f"RPLE exhausted {self._max_attempts} redraws from anchor "
            f"{anchor} at step {step} (level {key.level})"
        )

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward_hypotheses(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> Tuple[Tuple[int, int], ...]:
        """Anchor hypotheses, rank-penalised for the deepening search.

        Local interpretations cost their rank in attempt order (first one
        free); global-fallback interpretations (decision D12) cost one more
        than their rank — forward takes the fallback only on the occasional
        dead anchor, so charging it keeps low-budget passes local-first.
        """
        if removed in inner_region:
            raise CloakingError(
                f"removed segment {removed} still inside the inner region"
            )
        if state is not None:
            if not state.is_frontier(removed):
                # The forward pass only ever adds frontier segments.
                return ()
            if not tolerance.fits_after_add(state, removed):
                return ()
        else:
            if not any(
                neighbor in inner_region for neighbor in network.neighbors(removed)
            ):
                # The forward pass only ever adds frontier segments.
                return ()
            if not tolerance.fits(network, set(inner_region) | {removed}):
                return ()
        hypotheses: List[Tuple[int, int]] = []
        # The inner region is fixed for the whole enumeration — every
        # probe below (anchor liveness, prefix replay, global rows) is
        # against it — so the count-only tolerance answer is too.
        fits_hint = (
            tolerance.uniform_fit_after_add(state) if state is not None else None
        )
        # Local interpretation: the forward step drew slots from a live
        # anchor's list until one was valid.
        backward = self._pre.backward_list(removed)
        length = self._pre.list_length
        # One PRF draw per attempt, shared by every prefix check below. The
        # enumeration stops once every distinct slot has appeared: a later
        # duplicate of slot ``s`` can never yield a hypothesis, because its
        # prefix contains the first occurrence of ``s`` — whose forward
        # target from the candidate is exactly ``removed`` (list symmetry),
        # which is valid here — so the prefix check always discards it.
        # This keeps the expected PRF cost per backward step at ~T ln T
        # draws instead of the full 16T redraw budget.
        slots: List[int] = []
        distinct = 0
        seen_slot = [False] * length
        for attempt in range(self._max_attempts):
            value = (
                draws.draw(step, attempt)
                if draws is not None
                else keyed_draw(key, step, attempt)
            )
            slot = value % length
            slots.append(slot)
            if not seen_slot[slot]:
                seen_slot[slot] = True
                distinct += 1
                if distinct == length:
                    break
        for attempt, slot in enumerate(slots):
            candidate = backward[slot]
            if candidate is None or candidate not in inner_region:
                continue
            if not self._anchor_alive(
                network, inner_region, candidate, tolerance, state=state,
                fits_hint=fits_hint,
            ):
                # A dead anchor would have taken the global fallback, so the
                # local interpretation cannot hold for this candidate.
                continue
            if self._forward_prefix_fails(
                network, inner_region, candidate, slots[:attempt], tolerance,
                state=state, fits_hint=fits_hint,
            ):
                hypotheses.append((candidate, len(hypotheses)))
        # Global interpretation (decision D12): the forward anchor was dead
        # and this step was one RGE-style table transition.
        candidates = eligible_candidates(
            network, inner_region, tolerance, state=state
        )
        if removed in candidates:
            pick = draws.draw(step) if draws is not None else keyed_draw(key, step)
            if state is not None:
                rows = state_backward(network, state, candidates, removed, pick)
            else:
                table = TransitionTable(network, set(inner_region), set(candidates))
                rows = table.backward(removed, pick)
            global_rank = 0
            for candidate in rows:
                if not self._anchor_alive(
                    network, inner_region, candidate, tolerance, state=state,
                    fits_hint=fits_hint,
                ):
                    hypotheses.append((candidate, 1 + global_rank))
                    global_rank += 1
        seen = set()
        unique = []
        for anchor, penalty in hypotheses:
            if anchor not in seen:
                seen.add(anchor)
                unique.append((anchor, penalty))
        return tuple(unique)

    def backward_anchors(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> Tuple[int, ...]:
        return tuple(
            anchor
            for anchor, __ in self.backward_hypotheses(
                network, inner_region, removed, key, step, tolerance,
                state=state, draws=draws,
            )
        )

    def _forward_prefix_fails(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        anchor: int,
        earlier_slots: Sequence[int],
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        fits_hint: Optional[bool] = None,
    ) -> bool:
        """Replay guard: would a forward step from ``anchor`` have failed
        every earlier attempt (whose slot indices are ``earlier_slots``)?

        If some earlier attempt succeeds, the forward pass (had it started
        from this anchor) would have selected a different segment earlier, so
        the hypothesis "``anchor`` produced the removal at this attempt" is
        inconsistent and must be discarded.

        Every probe here is against the unchanged ``inner_region`` (the
        guard replays *attempts*, not additions), so the caller's uniform
        ``fits_hint`` for that region applies to every slot check.
        """
        forward = self._pre.forward_list(anchor)
        for slot in earlier_slots:
            if self._slot_valid(
                network, inner_region, forward[slot], tolerance, state=state,
                fits_hint=fits_hint,
            ):
                return False
        return True
