"""The cloaked-region envelope: what the anonymizer publishes to the LBS.

The envelope carries everything a requester needs to *use* and — with keys —
*reverse* the cloak, and nothing that helps a keyless adversary:

* the outermost region (public by design; this is the exposed location),
* per level: the transition count, the privacy parameters ``(k, l,
  sigma_s)`` (the de-anonymizer needs the tolerance to rebuild candidate
  sets exactly), a keyed MAC for instant wrong-key detection, a region
  digest binding the level to its outer region, and — in sealed-hint mode
  (decision D1) — the level's last-added segment id XOR-masked with a
  key-derived one-time pad,
* digests of the road network so both sides detect map mismatches early.

Security note: transition counts reveal the *sizes* of inner regions. The
paper's model already concedes this (every key holder learns the inner
regions outright; sizes follow from the public profile), and knowing how
many segments were added does not reveal *which* — each removal step still
has the full candidate ambiguity the paper's security argument rests on.
The sealed hint is indistinguishable from random without the key because the
pad is a PRF output never reused.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import json
import weakref
from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, Optional, Tuple

from ..errors import EnvelopeError, KeyMismatchError
from ..keys.keys import AccessKey
from ..keys.prf import derive_pad, keyed_digest, keyed_digest_block
from ..roadnet.graph import RoadNetwork
from .profile import LevelRequirement, ToleranceSpec

__all__ = [
    "LevelRecord",
    "CloakEnvelope",
    "region_digest",
    "network_digest",
    "seal_anchor",
    "unseal_anchor",
    "level_mac",
    "witness_byte",
    "witness_bytes",
]

_ENVELOPE_VERSION = 1
_PAD_BYTES = 8


def region_digest(region: AbstractSet[int]) -> str:
    """A stable digest of a segment set (order-independent)."""
    payload = ",".join(map(str, sorted(region)))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: Per-instance digest memo — RoadNetwork is immutable, and every engine
#: construction and pre-assignment lookup needs the digest, so the O(E)
#: hash runs once per network object instead of once per call.
_NETWORK_DIGEST_CACHE: "weakref.WeakKeyDictionary[RoadNetwork, str]" = (
    weakref.WeakKeyDictionary()
)


def network_digest(network: RoadNetwork) -> str:
    """A stable digest of the full road network topology and lengths."""
    cached = _NETWORK_DIGEST_CACHE.get(network)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for segment_id in network.segment_ids():
        segment = network.segment(segment_id)
        hasher.update(
            f"{segment_id}:{segment.junction_a}:{segment.junction_b}:"
            f"{segment.length!r};".encode()
        )
    digest = hasher.hexdigest()[:16]
    _NETWORK_DIGEST_CACHE[network] = digest
    return digest


def seal_anchor(key: AccessKey, anchor: int, purpose: str = "hint") -> int:
    """XOR-mask a segment id with a key-derived pad.

    Two purposes are sealed per level (decision D1): ``"hint"`` — the
    level's last-added segment (the reversal bootstrap) — and ``"start"`` —
    the level's starting anchor (the last-added segment of the level below;
    for level 1 this is the user's own segment). Distinct purposes use
    distinct PRF domains so the pads are independent.
    """
    if anchor < 0 or anchor >= 1 << (8 * _PAD_BYTES):
        raise EnvelopeError(f"anchor id {anchor} out of sealable range")
    domain = f"reversecloak|{purpose}|level={key.level}".encode()
    pad = int.from_bytes(derive_pad(key.material, domain, _PAD_BYTES), "big")
    return anchor ^ pad


def unseal_anchor(key: AccessKey, sealed: int, purpose: str = "hint") -> int:
    """Invert :func:`seal_anchor` (XOR is its own inverse)."""
    return seal_anchor(key, sealed, purpose)


def witness_byte(key: AccessKey, step: int, anchor: int) -> int:
    """The keyed per-step witness tag (decision D13).

    One byte binding the level key to the *anchor* of forward step ``step``
    (the segment the step expanded from). Without the key each byte is a PRF
    output — indistinguishable from random and revealing nothing about the
    anchor; with the key the reversal search discards false anchor
    hypotheses with probability 255/256 per step, keeping hinted peels
    linear even through dense regions where the paper's collision problem
    is at its worst.
    """
    message = f"witness|{step}|{anchor}".encode()
    return keyed_digest(key.material, message)[0]


def witness_bytes(key: AccessKey, anchors: Iterable[int]) -> Tuple[int, ...]:
    """The witness tags of a whole level in one batched keyed-digest loop.

    ``anchors`` are the per-step forward anchors in step order (step 1
    first). Byte-identical to ``tuple(witness_byte(key, step, anchor) ...)``
    — this is the envelope-construction arm of the batched PRF plane.
    """
    messages = [
        f"witness|{step}|{anchor}".encode()
        for step, anchor in enumerate(anchors, start=1)
    ]
    return tuple(d[0] for d in keyed_digest_block(key.material, messages))


def level_mac(
    key: AccessKey,
    level: int,
    steps: int,
    sealed_anchor: Optional[int],
    sealed_start: Optional[int],
    witnesses: Tuple[int, ...],
    digest: str,
    algorithm: str,
    net_digest: str,
) -> str:
    """The keyed MAC written into a :class:`LevelRecord`.

    Binds the level key to the level's public metadata so reversal can detect
    a wrong key (or a tampered envelope) before walking a single transition.
    """
    message = (
        f"v{_ENVELOPE_VERSION}|{level}|{steps}|"
        f"{'-' if sealed_anchor is None else sealed_anchor}|"
        f"{'-' if sealed_start is None else sealed_start}|"
        f"{','.join(str(w) for w in witnesses)}|{digest}|"
        f"{algorithm}|{net_digest}"
    ).encode()
    return hmac_module.new(key.material, message, hashlib.sha256).hexdigest()[:32]


@dataclass(frozen=True)
class LevelRecord:
    """Public per-level metadata inside an envelope.

    Attributes:
        level: Privacy level (1-based).
        steps: Number of segments this level added.
        k: The level's ``delta_k`` (echoed from the profile).
        l: The level's ``delta_l``.
        tolerance: The level's ``sigma_s``; reversal rebuilds candidate sets
            with exactly this filter.
        sealed_anchor: XOR-sealed last-added segment id, or ``None`` when the
            envelope was produced without hints (pure search-mode artifact).
        sealed_start: XOR-sealed starting-anchor segment id (for level 1:
            the user's segment). Pins the unique reversal chain in hint mode.
        witnesses: Keyed per-step anchor witnesses (decision D13), one byte
            per transition; empty for search-mode envelopes.
        mac: Keyed MAC over the record (see :func:`level_mac`).
        digest: Digest of the outer region this level produced.
    """

    level: int
    steps: int
    k: int
    l: int
    tolerance: ToleranceSpec
    sealed_anchor: Optional[int]
    sealed_start: Optional[int]
    witnesses: Tuple[int, ...]
    mac: str
    digest: str

    def __post_init__(self) -> None:
        if self.witnesses and len(self.witnesses) != self.steps:
            raise EnvelopeError(
                f"level {self.level} carries {len(self.witnesses)} witnesses "
                f"for {self.steps} steps"
            )

    def verify_key(self, key: AccessKey, algorithm: str, net_digest: str) -> None:
        """Raise :class:`KeyMismatchError` unless ``key`` produced this record."""
        if key.level != self.level:
            raise KeyMismatchError(
                f"key for level {key.level} offered against record of level "
                f"{self.level}"
            )
        expected = level_mac(
            key, self.level, self.steps, self.sealed_anchor, self.sealed_start,
            self.witnesses, self.digest, algorithm, net_digest,
        )
        if not hmac_module.compare_digest(expected, self.mac):
            raise KeyMismatchError(
                f"key {key.fingerprint()} fails the level-{self.level} MAC"
            )

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "steps": self.steps,
            "k": self.k,
            "l": self.l,
            "tolerance": self.tolerance.to_dict(),
            "sealed_anchor": self.sealed_anchor,
            "sealed_start": self.sealed_start,
            "witnesses": list(self.witnesses),
            "mac": self.mac,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "LevelRecord":
        if not isinstance(document, dict):
            raise EnvelopeError(
                f"level record document must be a dict, got {type(document).__name__}"
            )

        def _optional_int(field: str) -> Optional[int]:
            value = document.get(field)
            return None if value is None else int(value)

        return cls(
            level=int(document["level"]),
            steps=int(document["steps"]),
            k=int(document["k"]),
            l=int(document["l"]),
            tolerance=ToleranceSpec.from_dict(document["tolerance"]),
            sealed_anchor=_optional_int("sealed_anchor"),
            sealed_start=_optional_int("sealed_start"),
            witnesses=tuple(map(int, document.get("witnesses", ()))),
            mac=str(document["mac"]),
            digest=str(document["digest"]),
        )


@dataclass(frozen=True)
class CloakEnvelope:
    """The published multi-level cloaked location.

    Attributes:
        algorithm: ``"rge"`` or ``"rple"``.
        algorithm_params: Parameters needed to reconstruct the algorithm
            deterministically (e.g. RPLE's ``list_length``).
        network_name: Human-readable map name.
        net_digest: Digest of the map (see :func:`network_digest`).
        region: The outermost cloaking region, ascending segment ids.
        levels: One :class:`LevelRecord` per keyed level, level 1 first.
        snapshot_time: Simulation time of the population snapshot used.
    """

    algorithm: str
    algorithm_params: dict
    network_name: str
    net_digest: str
    region: Tuple[int, ...]
    levels: Tuple[LevelRecord, ...]
    snapshot_time: float = 0.0

    def __post_init__(self) -> None:
        if tuple(sorted(self.region)) != self.region:
            raise EnvelopeError("envelope region must be sorted ascending")
        if not self.region:
            raise EnvelopeError("envelope region must be non-empty")
        expected = list(range(1, len(self.levels) + 1))
        if [record.level for record in self.levels] != expected:
            raise EnvelopeError(
                f"level records must cover 1..{len(self.levels)} in order"
            )
        if self.levels and self.levels[-1].digest != region_digest(set(self.region)):
            raise EnvelopeError("outermost level digest does not match region")

    @property
    def top_level(self) -> int:
        """The highest (outermost) privacy level."""
        return len(self.levels)

    def level_record(self, level: int) -> LevelRecord:
        """The record of ``level`` (1-based)."""
        if not 1 <= level <= len(self.levels):
            raise EnvelopeError(
                f"level must be in 1..{len(self.levels)}, got {level}"
            )
        return self.levels[level - 1]

    def total_steps(self) -> int:
        """Total transitions across all levels."""
        return sum(record.steps for record in self.levels)

    def region_set(self) -> frozenset:
        return frozenset(self.region)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": "repro.envelope",
            "version": _ENVELOPE_VERSION,
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "network_name": self.network_name,
            "net_digest": self.net_digest,
            "region": list(self.region),
            "levels": [record.to_dict() for record in self.levels],
            "snapshot_time": self.snapshot_time,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "CloakEnvelope":
        if not isinstance(document, dict):
            raise EnvelopeError(
                f"envelope document must be a dict, got {type(document).__name__}"
            )
        if document.get("format") != "repro.envelope":
            raise EnvelopeError("not a repro.envelope document")
        if document.get("version") != _ENVELOPE_VERSION:
            raise EnvelopeError(
                f"unsupported envelope version: {document.get('version')}"
            )
        return cls(
            algorithm=str(document["algorithm"]),
            algorithm_params=dict(document.get("algorithm_params", {})),
            network_name=str(document.get("network_name", "")),
            net_digest=str(document["net_digest"]),
            region=tuple(map(int, document["region"])),
            levels=tuple(
                LevelRecord.from_dict(item) for item in document["levels"]
            ),
            snapshot_time=float(document.get("snapshot_time", 0.0)),
        )

    def to_json(self) -> str:
        """A canonical JSON encoding (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "CloakEnvelope":
        return cls.from_dict(json.loads(payload))
