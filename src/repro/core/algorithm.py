"""Shared machinery of the reversible cloaking algorithms.

Both RGE and RPLE fit one contract (:class:`CloakingAlgorithm`):

* ``forward_step`` — given the current region and the last-added *anchor*
  segment, deterministically select the next segment with the level key,
* ``backward_anchors`` — given the region *before* a step and the segment
  that step added, return every anchor hypothesis consistent with the key
  (exactly one in the collision-free case).

The engine (:mod:`repro.core.engine`) owns the multi-level loop and the
reversal search; algorithms only answer single-step questions, which keeps
the reversibility argument local: a forward step and its backward lookup use
the same keyed draw and the same deterministically ordered views of the
region, so the backward result provably contains the forward anchor.

Keyed draws use a per-step, per-attempt PRF index (reconstruction decision
D3): ``R(step, attempt) = PRF(key, level-domain, step << 24 | attempt)``.
Indexing by step — instead of one running counter — lets the backward pass
replay any step's draws without knowing how many draws earlier steps
consumed (RPLE redraws make that count variable).

Complexity: every step-level primitive here accepts an optional maintained
:class:`~repro.core.region_state.RegionState`. Without it, the frontier and
each candidate's tolerance check are recomputed from the raw region —
O(|R| * deg + |CanA| * |R|) per step, O(R^2 * deg) per level. With it, the
frontier is read from the maintained multiset and tolerance uses O(1)
deltas (:meth:`ToleranceSpec.fits_after_add`), making a level of R
additions O(R * (deg + |CanA|)) — near-linear in the region size. Both
paths are deterministic and produce byte-identical candidate orderings, so
envelopes and reversals are unaffected by which one ran.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import AbstractSet, Optional, Set, Tuple

from ..errors import CloakingError, FrontierExhaustedError, ToleranceExceededError
from ..keys.keys import AccessKey
from ..keys.prf import prf_value
from ..roadnet.graph import RoadNetwork
from .profile import ToleranceSpec
from .region_state import RegionState

__all__ = ["CloakingAlgorithm", "keyed_draw", "eligible_candidates"]

_ATTEMPT_BITS = 24
MAX_ATTEMPT = 1 << _ATTEMPT_BITS

#: Per-level transition-domain bytes (pure function of the level number;
#: rebuilt-per-draw f-string encoding showed up in expansion profiles).
_TRANSITION_DOMAINS: dict = {}


def _transition_domain(level: int) -> bytes:
    domain = _TRANSITION_DOMAINS.get(level)
    if domain is None:
        domain = f"reversecloak|level={level}|transitions".encode()
        _TRANSITION_DOMAINS[level] = domain
    return domain


def keyed_draw(key: AccessKey, step: int, attempt: int = 0) -> int:
    """The keyed pseudo-random number ``R`` of ``(step, attempt)``.

    ``step`` is 1-based (the paper's ``R_i`` drives the i-th transition);
    ``attempt`` counts redraws within a step (RPLE only; RGE always uses
    attempt 0).
    """
    if step < 1:
        raise CloakingError(f"step must be >= 1, got {step}")
    if not 0 <= attempt < MAX_ATTEMPT:
        raise CloakingError(f"attempt must be in 0..{MAX_ATTEMPT - 1}, got {attempt}")
    return prf_value(
        key.material, _transition_domain(key.level), (step << _ATTEMPT_BITS) | attempt
    )


def eligible_candidates(
    network: RoadNetwork,
    region: AbstractSet[int],
    tolerance: ToleranceSpec,
    state: Optional[RegionState] = None,
) -> Tuple[int, ...]:
    """The tolerance-filtered candidate frontier ``CanA`` of ``region``.

    A frontier segment is eligible when adding it keeps the region within
    the level's spatial tolerance. Both expansion and reversal must apply
    exactly this filter, otherwise their candidate orderings diverge; it is
    therefore the single shared implementation.

    With a maintained ``state`` (whose members equal ``region``) the
    frontier comes from the incremental multiset and each candidate is
    checked with an O(1) tolerance delta instead of an O(|region|) set copy
    and recompute; the result — content *and* order — is identical.
    """
    if state is not None:
        return tuple(
            candidate
            for candidate in state.frontier()
            if tolerance.fits_after_add(state, candidate)
        )
    region_set = set(region)
    return tuple(
        candidate
        for candidate in network.frontier(region_set)
        if tolerance.fits(network, region_set | {candidate})
    )


class CloakingAlgorithm(ABC):
    """Contract shared by the reversible expansion algorithms."""

    #: Short machine-readable name recorded in envelopes ("rge" / "rple").
    name: str = ""

    @abstractmethod
    def forward_step(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
    ) -> int:
        """Select the next segment to add.

        Args:
            network: The shared road map.
            region: The current cloaking region (anchor included).
            anchor: The last-added segment (the user segment at level start).
            key: The level key driving the keyed draws.
            step: 1-based transition index within this level.
            tolerance: The level's spatial tolerance.
            state: Optional maintained state of ``region`` for O(1) frontier
                and tolerance reads; never changes the selected segment.

        Returns:
            The id of the selected frontier segment.

        Raises:
            ToleranceExceededError: No frontier segment fits the tolerance.
            FrontierExhaustedError: The frontier itself is empty.
            CloakingError: The algorithm cannot continue from this anchor.
        """

    @abstractmethod
    def backward_anchors(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
    ) -> Tuple[int, ...]:
        """Anchor hypotheses for the step that added ``removed``.

        Args:
            network: The shared road map.
            inner_region: The region *before* the step (``removed`` excluded).
            removed: The segment the forward step added.
            key: The level key.
            step: 1-based transition index within this level.
            tolerance: The level's spatial tolerance.
            state: Optional maintained state of ``inner_region``; never
                changes the returned hypotheses.

        Returns:
            Candidate anchors, best-first. Empty when ``removed`` could not
            have been added at this step with this key (the caller prunes the
            hypothesis).
        """

    def backward_hypotheses(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
    ) -> Tuple[Tuple[int, int], ...]:
        """Anchor hypotheses with a search *penalty* each.

        The reversal search runs iterative deepening over the summed
        penalty of a chain: hypotheses ranked first (the overwhelmingly
        likely ones) are free, later-ranked alternatives cost their rank.
        True chains deviate from first choices rarely, so they surface in a
        low-budget pass before the combinatorial false-hypothesis space is
        entered. RPLE overrides this to additionally charge its
        global-fallback interpretation (decision D12).
        """
        return tuple(
            (anchor, index)
            for index, anchor in enumerate(
                self.backward_anchors(
                    network, inner_region, removed, key, step, tolerance,
                    state=state,
                )
            )
        )

    def params(self) -> dict:
        """Algorithm parameters to embed in envelopes (overridden by RPLE)."""
        return {}

    def _raise_no_candidates(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        step: int,
        level: int,
        state: Optional[RegionState] = None,
    ) -> None:
        """Raise the precise exhaustion error for an empty eligible set."""
        frontier = state.frontier() if state is not None else network.frontier(
            set(region)
        )
        if frontier:
            raise ToleranceExceededError(
                level, f"no frontier segment fits the tolerance at step {step}"
            )
        raise FrontierExhaustedError(level)
