"""Shared machinery of the reversible cloaking algorithms.

Both RGE and RPLE fit one contract (:class:`CloakingAlgorithm`):

* ``forward_step`` — given the current region and the last-added *anchor*
  segment, deterministically select the next segment with the level key,
* ``backward_anchors`` — given the region *before* a step and the segment
  that step added, return every anchor hypothesis consistent with the key
  (exactly one in the collision-free case).

The engine (:mod:`repro.core.engine`) owns the multi-level loop and the
reversal search; algorithms only answer single-step questions, which keeps
the reversibility argument local: a forward step and its backward lookup use
the same keyed draw and the same deterministically ordered views of the
region, so the backward result provably contains the forward anchor.

Keyed draws use a per-step, per-attempt PRF index (reconstruction decision
D3): ``R(step, attempt) = PRF(key, level-domain, step << 24 | attempt)``.
Indexing by step — instead of one running counter — lets the backward pass
replay any step's draws without knowing how many draws earlier steps
consumed (RPLE redraws make that count variable).

Draws come in two byte-identical planes. :func:`keyed_draw` is the per-call
plane: one HMAC per invocation. :class:`LevelDraws` is the batched plane:
one buffer per (level key, request) that pre-draws the attempt-0 values of
a run of upcoming steps in a single tight loop (:func:`~repro.keys.prf.
prf_block`), draws redraw attempts on demand, and memoizes every value it
has drawn — so a whole level peel (many
hypotheses replaying the same steps) pays for each distinct draw once. The
engine and the reversal search construct one ``LevelDraws`` per level and
pass it down; algorithms fall back to :func:`keyed_draw` when ``draws`` is
``None``, which is the equivalence/benchmark baseline (like
``incremental=False`` for the region state).

Complexity: every step-level primitive here accepts an optional maintained
:class:`~repro.core.region_state.RegionState`. Without it, the frontier and
each candidate's tolerance check are recomputed from the raw region —
O(|R| * deg + |CanA| * |R|) per step, O(R^2 * deg) per level. With it, the
frontier is read from the maintained multiset and tolerance uses O(1)
deltas (:meth:`ToleranceSpec.fits_after_add`), making a level of R
additions O(R * (deg + |CanA|)) — near-linear in the region size. Both
paths are deterministic and produce byte-identical candidate orderings, so
envelopes and reversals are unaffected by which one ran.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import AbstractSet, Dict, Optional, Set, Tuple

from ..errors import CloakingError, FrontierExhaustedError, ToleranceExceededError
from ..keys.keys import AccessKey
from ..keys.prf import PrfDrawer, prf_value
from ..roadnet.graph import RoadNetwork
from .profile import ToleranceSpec
from .region_state import RegionState

__all__ = ["CloakingAlgorithm", "LevelDraws", "keyed_draw", "eligible_candidates"]

_ATTEMPT_BITS = 24
MAX_ATTEMPT = 1 << _ATTEMPT_BITS

#: Per-level transition-domain bytes (pure function of the level number;
#: rebuilt-per-draw f-string encoding showed up in expansion profiles).
#: Bounded: level numbers arrive from attacker-controlled envelopes, so an
#: unbounded memo would let forged level fields grow a server's memory;
#: real profiles use a handful of levels, so a full drop past the cap
#: costs one re-encode per level afterwards.
_TRANSITION_DOMAINS: dict = {}
_TRANSITION_DOMAINS_CAP = 128


def _transition_domain(level: int) -> bytes:
    domain = _TRANSITION_DOMAINS.get(level)
    if domain is None:
        if len(_TRANSITION_DOMAINS) >= _TRANSITION_DOMAINS_CAP:
            _TRANSITION_DOMAINS.clear()
        domain = f"reversecloak|level={level}|transitions".encode()
        _TRANSITION_DOMAINS[level] = domain
    return domain


def keyed_draw(key: AccessKey, step: int, attempt: int = 0) -> int:
    """The keyed pseudo-random number ``R`` of ``(step, attempt)``.

    ``step`` is 1-based (the paper's ``R_i`` drives the i-th transition);
    ``attempt`` counts redraws within a step (RPLE only; RGE always uses
    attempt 0).
    """
    if step < 1:
        raise CloakingError(f"step must be >= 1, got {step}")
    if not 0 <= attempt < MAX_ATTEMPT:
        raise CloakingError(f"attempt must be in 0..{MAX_ATTEMPT - 1}, got {attempt}")
    return prf_value(
        key.material, _transition_domain(key.level), (step << _ATTEMPT_BITS) | attempt
    )


class LevelDraws:
    """Buffered keyed draws of one level key (the batched PRF plane).

    Maintains two pre-draw surfaces over the level's transition domain,
    byte-identical to :func:`keyed_draw` everywhere:

    * **attempt-0 plane** — the first request at or past the pre-drawn
      horizon block-draws the attempt-0 values of the next run of steps in
      one :func:`~repro.keys.prf.prf_block` loop (geometrically growing
      blocks, so a level of ``n`` additions costs O(n) batched HMACs plus
      at most one block of overshoot);
    * **redraw plane** — RPLE redraws (attempt >= 1) are drawn singly
      (most redraw runs stop after one extra attempt, so speculative
      bursts would mostly waste HMACs) and memoized like everything else.

    Every drawn value is memoized, which is what makes one instance worth
    sharing across a whole level peel: sibling hypotheses and replay
    certifications re-request the same (step, attempt) pairs over and over
    and pay a dict hit instead of an HMAC.

    Not thread-safe — instances are per-request scratch state (engines
    build one per level per call), never shared across threads.
    """

    __slots__ = ("_drawer", "_level", "_values", "_next_step", "_block")

    #: First attempt-0 block size; doubles per refill up to the cap. The
    #: cap bounds end-of-level overshoot (wasted draws past the last step)
    #: at 63 while still amortising the per-block fixed cost over >= 16
    #: draws — with an unbounded doubling schedule a ~500-step level wastes
    #: a whole trailing block, which measurably exceeds the batching gain.
    _INITIAL_BLOCK = 16
    _MAX_BLOCK = 64
    #: Ceiling on a caller-supplied lookahead. Envelopes are attacker
    #: input, and the engine sizes peel buffers from a record's claimed
    #: step count before the steps-vs-region validation runs — without a
    #: ceiling a forged ``steps`` would allocate and draw an arbitrarily
    #: large first block. Real levels are bounded by the map size; past
    #: the ceiling the buffer just refills in capped blocks.
    _MAX_LOOKAHEAD = 4096

    def __init__(self, key: AccessKey, lookahead: Optional[int] = None) -> None:
        """Wrap ``key``; ``lookahead`` (e.g. a known step count) sizes the
        first attempt-0 block so replays draw their whole level at once."""
        self._drawer = PrfDrawer(key.material, _transition_domain(key.level))
        self._level = key.level
        self._values: Dict[int, int] = {}
        self._next_step = 1
        # A caller-supplied lookahead is an exact upcoming step count (a
        # replay knows its level length), so honour it beyond _MAX_BLOCK —
        # every pre-drawn value will be consumed. Only the growth schedule
        # of the unknown-length path (and forged counts, see
        # _MAX_LOOKAHEAD) is capped.
        self._block = max(
            self._INITIAL_BLOCK, min(lookahead or 0, self._MAX_LOOKAHEAD)
        )

    @property
    def level(self) -> int:
        return self._level

    def draw(self, step: int, attempt: int = 0) -> int:
        """The keyed pseudo-random number ``R`` of ``(step, attempt)``.

        Identical to ``keyed_draw(key, step, attempt)``, served from the
        pre-drawn buffers.
        """
        if step < 1:
            raise CloakingError(f"step must be >= 1, got {step}")
        if not 0 <= attempt < MAX_ATTEMPT:
            raise CloakingError(
                f"attempt must be in 0..{MAX_ATTEMPT - 1}, got {attempt}"
            )
        packed = (step << _ATTEMPT_BITS) | attempt
        value = self._values.get(packed)
        if value is not None:
            return value
        if attempt == 0:
            # Extend the attempt-0 horizon to cover ``step`` in one loop.
            count = max(self._block, step - self._next_step + 1)
            indices = [s << _ATTEMPT_BITS for s in range(self._next_step, self._next_step + count)]
            self._values.update(zip(indices, self._drawer.block(indices)))
            self._next_step += count
            self._block = min(2 * count, self._MAX_BLOCK)
        else:
            # Redraw plane: drawn singly (most redraw runs stop after one
            # extra attempt, so bursts mostly waste HMACs) but memoized, so
            # a peel's many hypotheses re-read each attempt value for free.
            value = self._drawer.value(packed)
            self._values[packed] = value
            return value
        return self._values[packed]


def eligible_candidates(
    network: RoadNetwork,
    region: AbstractSet[int],
    tolerance: ToleranceSpec,
    state: Optional[RegionState] = None,
) -> Tuple[int, ...]:
    """The tolerance-filtered candidate frontier ``CanA`` of ``region``.

    A frontier segment is eligible when adding it keeps the region within
    the level's spatial tolerance. Both expansion and reversal must apply
    exactly this filter, otherwise their candidate orderings diverge; it is
    therefore the single shared implementation.

    With a maintained ``state`` (whose members equal ``region``) the
    frontier comes from the incremental multiset and each candidate is
    checked with an O(1) tolerance delta instead of an O(|region|) set copy
    and recompute; the result — content *and* order — is identical.
    """
    if state is not None:
        uniform = tolerance.uniform_fit_after_add(state)
        if uniform is not None:
            # Count-only tolerance: one decision covers every candidate,
            # so skip the per-candidate filter calls entirely. Content and
            # order are unchanged: all candidates pass or all fail.
            return state.frontier() if uniform else ()
        return tuple(
            candidate
            for candidate in state.frontier()
            if tolerance.fits_after_add(state, candidate)
        )
    region_set = set(region)
    return tuple(
        candidate
        for candidate in network.frontier(region_set)
        if tolerance.fits(network, region_set | {candidate})
    )


class CloakingAlgorithm(ABC):
    """Contract shared by the reversible expansion algorithms."""

    #: Short machine-readable name recorded in envelopes ("rge" / "rple").
    name: str = ""

    @abstractmethod
    def forward_step(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> int:
        """Select the next segment to add.

        Args:
            network: The shared road map.
            region: The current cloaking region (anchor included).
            anchor: The last-added segment (the user segment at level start).
            key: The level key driving the keyed draws.
            step: 1-based transition index within this level.
            tolerance: The level's spatial tolerance.
            state: Optional maintained state of ``region`` for O(1) frontier
                and tolerance reads; never changes the selected segment.
            draws: Optional batched draw buffer of ``key``'s level; serves
                the identical keyed values at block-draw cost.

        Returns:
            The id of the selected frontier segment.

        Raises:
            ToleranceExceededError: No frontier segment fits the tolerance.
            FrontierExhaustedError: The frontier itself is empty.
            CloakingError: The algorithm cannot continue from this anchor.
        """

    @abstractmethod
    def backward_anchors(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> Tuple[int, ...]:
        """Anchor hypotheses for the step that added ``removed``.

        Args:
            network: The shared road map.
            inner_region: The region *before* the step (``removed`` excluded).
            removed: The segment the forward step added.
            key: The level key.
            step: 1-based transition index within this level.
            tolerance: The level's spatial tolerance.
            state: Optional maintained state of ``inner_region``; never
                changes the returned hypotheses.
            draws: Optional batched draw buffer of ``key``'s level.

        Returns:
            Candidate anchors, best-first. Empty when ``removed`` could not
            have been added at this step with this key (the caller prunes the
            hypothesis).
        """

    def backward_hypotheses(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> Tuple[Tuple[int, int], ...]:
        """Anchor hypotheses with a search *penalty* each.

        The reversal search runs iterative deepening over the summed
        penalty of a chain: hypotheses ranked first (the overwhelmingly
        likely ones) are free, later-ranked alternatives cost their rank.
        True chains deviate from first choices rarely, so they surface in a
        low-budget pass before the combinatorial false-hypothesis space is
        entered. RPLE overrides this to additionally charge its
        global-fallback interpretation (decision D12).
        """
        return tuple(
            (anchor, index)
            for index, anchor in enumerate(
                self.backward_anchors(
                    network, inner_region, removed, key, step, tolerance,
                    state=state, draws=draws,
                )
            )
        )

    def params(self) -> dict:
        """Algorithm parameters to embed in envelopes (overridden by RPLE)."""
        return {}

    def _raise_no_candidates(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        step: int,
        level: int,
        state: Optional[RegionState] = None,
    ) -> None:
        """Raise the precise exhaustion error for an empty eligible set."""
        frontier = state.frontier() if state is not None else network.frontier(
            set(region)
        )
        if frontier:
            raise ToleranceExceededError(
                level, f"no frontier segment fits the tolerance at step {step}"
            )
        raise FrontierExhaustedError(level)
