"""ReverseCloak core: profiles, transition tables, RGE, RPLE, the engine."""

from .algorithm import (
    CloakingAlgorithm,
    LevelDraws,
    eligible_candidates,
    keyed_draw,
)
from .engine import (
    DeanonymizationResult,
    ReverseCloakEngine,
    algorithm_for_envelope,
)
from .envelope import (
    CloakEnvelope,
    LevelRecord,
    network_digest,
    region_digest,
    seal_anchor,
    unseal_anchor,
)
from .profile import LevelRequirement, PrivacyProfile, ToleranceSpec
from .region_state import RegionState
from .reversal import PeelOutcome, enumerate_bootstraps, peel_level, replay_level
from .rge import ReversibleGlobalExpansion
from .rple import (
    DEFAULT_LIST_LENGTH,
    Preassignment,
    ReversiblePreassignmentExpansion,
)
from .transition_table import TransitionTable, length_order

__all__ = [
    "CloakingAlgorithm",
    "keyed_draw",
    "LevelDraws",
    "eligible_candidates",
    "TransitionTable",
    "length_order",
    "ReversibleGlobalExpansion",
    "ReversiblePreassignmentExpansion",
    "Preassignment",
    "DEFAULT_LIST_LENGTH",
    "PrivacyProfile",
    "LevelRequirement",
    "ToleranceSpec",
    "RegionState",
    "CloakEnvelope",
    "LevelRecord",
    "region_digest",
    "network_digest",
    "seal_anchor",
    "unseal_anchor",
    "PeelOutcome",
    "peel_level",
    "replay_level",
    "enumerate_bootstraps",
    "ReverseCloakEngine",
    "DeanonymizationResult",
    "algorithm_for_envelope",
]
