"""The RGE transition table (paper Figure 2).

For one expansion step, the table is built from the current cloaking region
``CloakA`` (rows) and its candidate frontier ``CanA`` (columns). Rows and
columns are ordered by segment length, shortest first ("the shortest segments
are mapped to the 1st row and 1st column"); length ties break by segment id
so both sides of the protocol order identically.

The transition value of cell ``(i, j)`` (1-based in the paper) is::

    ((i - 1) + (j - 1)) mod |CanA|

so each value appears at most once per row and per column whenever
``|CloakA| <= |CanA|`` — the property that makes one keyed *pick value*
``p = R mod |CanA|`` select a unique forward transition (row of the last
added segment -> some column) and a unique backward transition (column of the
removed segment -> some row). When ``|CloakA| > |CanA|`` a column contains
repeated values and the backward lookup returns every matching row; the
caller disambiguates by hypothesis search with forward-replay validation
(reconstruction decision D11, measured by experiment E11).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, AbstractSet, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CloakingError
from ..roadnet.graph import RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .region_state import RegionState

__all__ = [
    "length_order",
    "TransitionTable",
    "state_forward",
    "state_backward",
]


def length_order(network: RoadNetwork, segment_ids: Iterable[int]) -> Tuple[int, ...]:
    """Segment ids sorted by (length, id), shortest first.

    This is the canonical ordering for transition-table rows and columns; it
    is a pure function of the road network, so anonymizer and de-anonymizer
    always agree on it. Sorting keys on the compiled plane's global length
    *rank* — one precomputed int per segment whose order equals the
    ``(length, id)`` order — this runs once per expansion step, so the
    per-element comparison cost matters.
    """
    ranks = network.compiled().rank_of
    try:
        return tuple(sorted(segment_ids, key=ranks.__getitem__))
    except KeyError as exc:
        network.segment_length(exc.args[0])  # raises UnknownSegmentError
        raise


class TransitionTable:
    """One expansion step's transition table.

    Args:
        network: The road network (provides segment lengths for ordering).
        cloak: The current cloaking region ``CloakA`` (row segments).
        candidates: The candidate frontier ``CanA`` (column segments); must be
            non-empty and disjoint from ``cloak``.
        row_order: Optional precomputed ``length_order`` of ``cloak`` (e.g.
            maintained incrementally by a
            :class:`~repro.core.region_state.RegionState`). Trusted verbatim:
            the per-step re-sort and the cloak/candidate overlap check are
            skipped, which keeps table construction O(|CanA| log |CanA|)
            instead of O((|CloakA| + |CanA|) log).
    """

    def __init__(
        self,
        network: RoadNetwork,
        cloak: AbstractSet[int],
        candidates: AbstractSet[int],
        row_order: Optional[Sequence[int]] = None,
    ) -> None:
        if not cloak:
            raise CloakingError("transition table needs a non-empty cloak set")
        if not candidates:
            raise CloakingError("transition table needs a non-empty candidate set")
        if row_order is None:
            overlap = set(cloak) & set(candidates)
            if overlap:
                raise CloakingError(
                    f"cloak and candidate sets overlap: {sorted(overlap)}"
                )
            self._rows = length_order(network, cloak)
        else:
            self._rows = tuple(row_order)
        self._columns = length_order(network, candidates)
        self._row_index: Dict[int, int] = {
            segment_id: index for index, segment_id in enumerate(self._rows)
        }
        self._column_index: Dict[int, int] = {
            segment_id: index for index, segment_id in enumerate(self._columns)
        }

    @property
    def rows(self) -> Tuple[int, ...]:
        """Row segments, shortest first (``CloakA``)."""
        return self._rows

    @property
    def columns(self) -> Tuple[int, ...]:
        """Column segments, shortest first (``CanA``)."""
        return self._columns

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def column_count(self) -> int:
        return len(self._columns)

    @property
    def collision_free(self) -> bool:
        """Whether backward lookups are guaranteed unique
        (``|CloakA| <= |CanA|``)."""
        return self.row_count <= self.column_count

    def value(self, row: int, column: int) -> int:
        """The transition value of 0-based cell ``(row, column)``."""
        if not 0 <= row < self.row_count:
            raise CloakingError(f"row {row} outside 0..{self.row_count - 1}")
        if not 0 <= column < self.column_count:
            raise CloakingError(
                f"column {column} outside 0..{self.column_count - 1}"
            )
        return (row + column) % self.column_count

    def pick_value(self, random_value: int) -> int:
        """``p = R mod |CanA|`` for a keyed pseudo-random number ``R``."""
        if random_value < 0:
            raise CloakingError(f"random value must be non-negative: {random_value}")
        return random_value % self.column_count

    @staticmethod
    def forward_select(
        row_index: int, columns: Sequence[int], random_value: int
    ) -> int:
        """The forward transition formula, free of table construction.

        Given the anchor's 0-based position in the length-ordered cloak and
        the length-ordered candidate columns, the selected candidate is the
        unique column ``j`` with ``((row + j) mod |CanA|) == (R mod
        |CanA|)``. :meth:`forward` delegates here, and callers holding a
        maintained region ordering (anchor rank by binary search) can invoke
        it directly without materialising the rows at all — O(1) instead of
        O(|CloakA|) per step.
        """
        if random_value < 0:
            raise CloakingError(f"random value must be non-negative: {random_value}")
        pick = random_value % len(columns)
        return columns[(pick - row_index) % len(columns)]

    def forward(self, last_added: int, random_value: int) -> int:
        """The forward transition: the candidate selected from the row of
        ``last_added`` by the pick value of ``random_value``.

        This is the unique column ``j`` with
        ``value(row(last_added), j) == p``.
        """
        try:
            row = self._row_index[last_added]
        except KeyError:
            raise CloakingError(
                f"last added segment {last_added} is not in the cloak set"
            ) from None
        return self.forward_select(row, self._columns, random_value)

    def backward(self, removed: int, random_value: int) -> Tuple[int, ...]:
        """The backward transition: candidate previous segments for the
        removal of ``removed`` under ``random_value``.

        Returns every row segment whose cell in ``removed``'s column carries
        the pick value. The result has exactly one element when the table is
        :attr:`collision_free`; otherwise ``ceil(rows/columns)`` candidates at
        most.
        """
        try:
            column = self._column_index[removed]
        except KeyError:
            raise CloakingError(
                f"removed segment {removed} is not in the candidate set"
            ) from None
        pick = self.pick_value(random_value)
        first_row = (pick - column) % self.column_count
        return tuple(
            self._rows[row]
            for row in range(first_row, self.row_count, self.column_count)
        )

    def grid(self) -> List[List[int]]:
        """The full value grid (row-major), for display and figure E2."""
        return [
            [self.value(row, column) for column in range(self.column_count)]
            for row in range(self.row_count)
        ]

    def render(self, network: Optional[RoadNetwork] = None) -> str:
        """An ASCII rendering of the table in the style of Figure 2."""
        header = "        " + "  ".join(f"s{c:<4}" for c in self._columns)
        lines = [header]
        for row_index, row_segment in enumerate(self._rows):
            cells = "  ".join(
                f"{self.value(row_index, column):<5}"
                for column in range(self.column_count)
            )
            lines.append(f"s{row_segment:<6} {cells}")
        return "\n".join(lines)


def state_forward(
    network: RoadNetwork,
    state: "RegionState",
    candidates: Sequence[int],
    anchor: int,
    random_value: int,
) -> int:
    """The forward transition from a maintained region state.

    Selection ordering is protocol-critical and must stay byte-identical
    between RGE steps and RPLE's global fallback, so both call this single
    helper: the anchor's rank comes from the state's maintained length
    ordering (binary search), the columns are ``length_order`` of the
    eligible candidates — no O(|region|) row materialisation.
    """
    return TransitionTable.forward_select(
        state.length_rank(anchor),
        length_order(network, candidates),
        random_value,
    )


def state_backward(
    network: RoadNetwork,
    state: "RegionState",
    candidates: Sequence[int],
    removed: int,
    random_value: int,
) -> Tuple[int, ...]:
    """The backward transition from a maintained region state, table-free.

    :meth:`TransitionTable.backward` only ever reads one column index and
    one ``|CanA|``-strided row walk, yet building the table costs the full
    length-ordered row tuple plus two index dicts per call — the dominant
    constant of search-mode reversal. This computes the identical answer
    from the maintained state: the column index is the removed segment's
    position among the rank-sorted candidates (binary search over int
    ranks), and the matching rows come straight off the state's maintained
    length ordering (``members_by_length_slice``). ``removed`` must be one
    of ``candidates`` (callers have already checked eligibility).
    """
    rank_of = network.compiled().rank_of
    column_ranks = sorted(map(rank_of.__getitem__, candidates))
    count = len(column_ranks)
    pick = random_value % count
    column = bisect_left(column_ranks, rank_of[removed])
    return state.members_by_length_slice((pick - column) % count, count)


