"""Reversible Global Expansion (RGE), paper Section III-A.

Every expansion step rebuilds a fresh :class:`~repro.core.transition_table.
TransitionTable` from the *global* state — the whole current region as rows
and the whole eligible frontier as columns ("the links of previously selected
segments are rebuilt on the fly"). One keyed draw selects the transition:

* forward: the row of the last-added segment plus the pick value determine
  the unique column (the next segment);
* backward: the column of the removed segment plus the pick value determine
  the row (the previous anchor) — uniquely when ``|CloakA| <= |CanA|``,
  otherwise every ``|CanA|``-spaced row is a hypothesis for the engine's
  search to prune (decision D11).

RGE trades time for memory: table construction is :math:`O((|CloakA| +
|CanA|) \\log)` per step with no persistent state, the opposite end of the
design space from RPLE's precomputed lists (experiments E5/E7).
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Tuple

from ..errors import CloakingError
from ..keys.keys import AccessKey
from ..roadnet.graph import RoadNetwork
from .algorithm import (
    CloakingAlgorithm,
    LevelDraws,
    eligible_candidates,
    keyed_draw,
)
from .profile import ToleranceSpec
from .region_state import RegionState
from .transition_table import (
    TransitionTable,
    state_backward,
    state_forward,
)

__all__ = ["ReversibleGlobalExpansion"]


class ReversibleGlobalExpansion(CloakingAlgorithm):
    """The RGE algorithm. Stateless: safe to share across engines/threads.

    With a maintained :class:`RegionState`, the per-step table rows come
    from the state's incrementally sorted member list instead of a full
    re-sort, so a step costs O(deg + |CanA| log |CanA|) instead of
    O(|CloakA| log |CloakA| + |CanA| * |CloakA|). The table contents are
    identical either way.
    """

    name = "rge"

    def forward_step(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> int:
        if anchor not in region:
            raise CloakingError(
                f"anchor {anchor} is not inside the region at step {step}"
            )
        candidates = eligible_candidates(network, region, tolerance, state=state)
        if not candidates:
            self._raise_no_candidates(network, region, step, key.level, state=state)
        pick = draws.draw(step) if draws is not None else keyed_draw(key, step)
        if state is not None:
            return state_forward(network, state, candidates, anchor, pick)
        return TransitionTable(network, set(region), set(candidates)).forward(
            anchor, pick
        )

    def backward_anchors(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
        state: Optional[RegionState] = None,
        draws: Optional[LevelDraws] = None,
    ) -> Tuple[int, ...]:
        if removed in inner_region:
            raise CloakingError(
                f"removed segment {removed} still inside the inner region"
            )
        candidates = eligible_candidates(
            network, inner_region, tolerance, state=state
        )
        if removed not in candidates:
            # The forward step could never have selected this segment here:
            # it was not an eligible candidate of the inner region.
            return ()
        pick = draws.draw(step) if draws is not None else keyed_draw(key, step)
        if state is not None:
            # Identical to table.backward, without building the table —
            # the column index and the strided row walk come straight off
            # the maintained orderings.
            return state_backward(network, state, candidates, removed, pick)
        return TransitionTable(network, set(inner_region), set(candidates)).backward(
            removed, pick
        )
