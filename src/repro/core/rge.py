"""Reversible Global Expansion (RGE), paper Section III-A.

Every expansion step rebuilds a fresh :class:`~repro.core.transition_table.
TransitionTable` from the *global* state — the whole current region as rows
and the whole eligible frontier as columns ("the links of previously selected
segments are rebuilt on the fly"). One keyed draw selects the transition:

* forward: the row of the last-added segment plus the pick value determine
  the unique column (the next segment);
* backward: the column of the removed segment plus the pick value determine
  the row (the previous anchor) — uniquely when ``|CloakA| <= |CanA|``,
  otherwise every ``|CanA|``-spaced row is a hypothesis for the engine's
  search to prune (decision D11).

RGE trades time for memory: table construction is :math:`O((|CloakA| +
|CanA|) \\log)` per step with no persistent state, the opposite end of the
design space from RPLE's precomputed lists (experiments E5/E7).
"""

from __future__ import annotations

from typing import AbstractSet, Tuple

from ..errors import CloakingError
from ..keys.keys import AccessKey
from ..roadnet.graph import RoadNetwork
from .algorithm import CloakingAlgorithm, eligible_candidates, keyed_draw
from .profile import ToleranceSpec
from .transition_table import TransitionTable

__all__ = ["ReversibleGlobalExpansion"]


class ReversibleGlobalExpansion(CloakingAlgorithm):
    """The RGE algorithm. Stateless: safe to share across engines/threads."""

    name = "rge"

    def forward_step(
        self,
        network: RoadNetwork,
        region: AbstractSet[int],
        anchor: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
    ) -> int:
        if anchor not in region:
            raise CloakingError(
                f"anchor {anchor} is not inside the region at step {step}"
            )
        candidates = eligible_candidates(network, region, tolerance)
        if not candidates:
            self._raise_no_candidates(network, region, step, key.level)
        table = TransitionTable(network, set(region), set(candidates))
        return table.forward(anchor, keyed_draw(key, step))

    def backward_anchors(
        self,
        network: RoadNetwork,
        inner_region: AbstractSet[int],
        removed: int,
        key: AccessKey,
        step: int,
        tolerance: ToleranceSpec,
    ) -> Tuple[int, ...]:
        if removed in inner_region:
            raise CloakingError(
                f"removed segment {removed} still inside the inner region"
            )
        candidates = eligible_candidates(network, inner_region, tolerance)
        if removed not in candidates:
            # The forward step could never have selected this segment here:
            # it was not an eligible candidate of the inner region.
            return ()
        table = TransitionTable(network, set(inner_region), set(candidates))
        return table.backward(removed, keyed_draw(key, step))
