"""Result tables for the experiment suite.

Each benchmark regenerates one of the paper's figures/claims as a small text
table (the "same rows/series the paper reports"). :class:`ResultTable`
collects rows, renders them aligned for the console, and persists both a
text and a CSV artifact under ``benchmarks/results/`` so EXPERIMENTS.md can
quote measured numbers verbatim.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["ResultTable", "results_dir"]


def results_dir(base: Optional[Union[str, Path]] = None) -> Path:
    """The directory benchmark artifacts are written to (created on use)."""
    directory = Path(base) if base else Path(__file__).resolve().parents[3] / (
        "benchmarks/results"
    )
    directory.mkdir(parents=True, exist_ok=True)
    return directory


class ResultTable:
    """An ordered collection of experiment result rows.

    Args:
        experiment: Experiment id, e.g. ``"E5"`` (used as file stem).
        title: One-line description printed above the table.
        columns: Column names in display order.
    """

    def __init__(self, experiment: str, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a result table needs at least one column")
        self.experiment = experiment
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        """Append one row; values must cover exactly the declared columns."""
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row mismatch: missing {sorted(missing)}, extra {sorted(extra)}"
            )
        self.rows.append(dict(values))

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.3g}"
            return f"{value:.4g}"
        return str(value)

    def to_text(self) -> str:
        """The aligned console rendering."""
        cells = [self.columns] + [
            [self._format(row[column]) for column in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(line[index]) for line in cells)
            for index in range(len(self.columns))
        ]
        lines = [f"{self.experiment}: {self.title}"]
        header = "  ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row_cells in cells[1:]:
            lines.append(
                "  ".join(
                    cell.ljust(widths[index]) for index, cell in enumerate(row_cells)
                )
            )
        return "\n".join(lines)

    def save(self, directory: Optional[Union[str, Path]] = None) -> Path:
        """Write ``<experiment>.txt`` and ``<experiment>.csv``; returns the
        text path."""
        target = results_dir(directory)
        text_path = target / f"{self.experiment.lower()}.txt"
        text_path.write_text(self.to_text() + "\n")
        with open(target / f"{self.experiment.lower()}.csv", "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            writer.writerows(self.rows)
        return text_path

    def print_and_save(self, directory: Optional[Union[str, Path]] = None) -> None:
        """Convenience: print to stdout and persist the artifacts."""
        print()
        print(self.to_text())
        self.save(directory)

    def column(self, name: str) -> List[Any]:
        """All values of one column, row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]
