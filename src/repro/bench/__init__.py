"""Experiment harness: shared workloads and result tables."""

from .harness import ResultTable, results_dir
from .workloads import (
    Workload,
    pick_user_segments,
    standard_network,
    standard_snapshot,
    standard_workload,
    sweep_profile,
)

__all__ = [
    "ResultTable",
    "results_dir",
    "Workload",
    "standard_network",
    "standard_snapshot",
    "standard_workload",
    "pick_user_segments",
    "sweep_profile",
]
