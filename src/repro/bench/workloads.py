"""Shared experiment workloads (maps, fleets, user samples, profiles).

Every benchmark in ``benchmarks/`` draws its inputs from here so the
experiments stay comparable: same seeded maps, same seeded fleets, same
user-segment samples. Construction is memoised per process because the
Atlanta-scale map and a 10,000-car fleet take seconds to build and many
benchmarks share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.profile import PrivacyProfile
from ..mobility.simulator import TrafficSimulator
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.generators import atlanta_like, grid_network, radial_network
from ..roadnet.graph import RoadNetwork

__all__ = [
    "Workload",
    "standard_network",
    "standard_snapshot",
    "standard_workload",
    "pick_user_segments",
    "sweep_profile",
]


@lru_cache(maxsize=None)
def standard_network(kind: str, size: int = 12, seed: int = 2017) -> RoadNetwork:
    """A memoised experiment map.

    Args:
        kind: ``"grid"`` (``size`` x ``size``), ``"radial"``
            (``size`` rings x ``2*size`` spokes) or ``"atlanta"``
            (``size`` interpreted as percent of the paper-scale map,
            e.g. 25 -> scale 0.25).
        size: Shape parameter, see above.
        seed: Seed for the random map kinds.
    """
    if kind == "grid":
        return grid_network(size, size)
    if kind == "radial":
        return radial_network(size, 2 * size)
    if kind == "atlanta":
        return atlanta_like(seed=seed, scale=size / 100.0)
    raise ValueError(f"unknown map kind: {kind!r}")


@lru_cache(maxsize=None)
def standard_snapshot(
    kind: str, size: int, n_cars: int, seed: int = 2017, warmup: int = 3
) -> PopulationSnapshot:
    """A memoised population snapshot on :func:`standard_network`."""
    network = standard_network(kind, size, seed)
    simulator = TrafficSimulator(network, n_cars=n_cars, seed=seed)
    simulator.run(warmup)
    return simulator.snapshot()


def pick_user_segments(
    snapshot: PopulationSnapshot, count: int, seed: int = 5
) -> Tuple[int, ...]:
    """A deterministic sample of occupied segments to cloak from."""
    occupied = snapshot.occupied_segments()
    if not occupied:
        raise ValueError("snapshot has no occupied segments")
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(occupied), size=min(count, len(occupied)), replace=False)
    return tuple(occupied[int(index)] for index in sorted(indices))


def sweep_profile(
    levels: int,
    k: int,
    l: int = 3,
    max_segments: Optional[int] = None,
) -> PrivacyProfile:
    """The profile family used by the parameter sweeps: level 1 gets the
    requested ``(k, l)``, higher levels step both linearly as in the demo
    GUI's default settings."""
    return PrivacyProfile.uniform(
        levels=levels,
        base_k=k,
        k_step=max(1, k // 2),
        base_l=l,
        l_step=1,
        max_segments=max_segments,
    )


@dataclass(frozen=True)
class Workload:
    """One fully-specified experiment input.

    Attributes:
        network: The map.
        snapshot: The fleet snapshot.
        user_segments: Segments to cloak (sampled from occupied ones).
        name: Workload label used in result tables.
    """

    network: RoadNetwork
    snapshot: PopulationSnapshot
    user_segments: Tuple[int, ...]
    name: str


def standard_workload(
    kind: str = "grid",
    size: int = 12,
    n_cars: int = 800,
    users: int = 10,
    seed: int = 2017,
) -> Workload:
    """The default experiment workload (memoised pieces, fresh sample)."""
    network = standard_network(kind, size, seed)
    snapshot = standard_snapshot(kind, size, n_cars, seed)
    return Workload(
        network=network,
        snapshot=snapshot,
        user_segments=pick_user_segments(snapshot, users, seed),
        name=f"{kind}-{size}-{n_cars}cars",
    )
