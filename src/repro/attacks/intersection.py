"""The intersection attack on continuous cloaking.

A single cloak hides the user among >= k candidates. A *stream* of cloaks
for the same pseudonym is weaker: an adversary who observes the population
(e.g. a compromised roadside sensor network) intersects the candidate user
sets of successive envelopes — the true user is inside every region, most
bystanders are not, and the candidate set shrinks tick by tick. This is the
classical query-linking attack on snapshot k-anonymity; quantifying how
fast the intersection collapses (and how much larger k slows it) is
experiment E15.

The attacker here is deliberately strong, as in the literature: it knows
each envelope's region *and* the full population snapshot of its moment.
Weaker attackers (region-only) can run the same computation over segments
instead of user ids via :meth:`IntersectionAttack.segment_candidates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..lbs.continuous import CloakTimeline
from .entropy import uniform_entropy

__all__ = ["IntersectionTrace", "IntersectionAttack"]


@dataclass(frozen=True)
class IntersectionTrace:
    """The attack's progress over a timeline.

    Attributes:
        candidate_counts: Remaining candidate users after each observed
            envelope (index 0 = after the first cloak).
        final_candidates: The surviving user ids.
        identified: Whether the intersection collapsed to a single user.
        ticks_to_identify: Index (0-based) of the envelope at which the
            candidate set first became a singleton, or ``None``.
    """

    candidate_counts: Tuple[int, ...]
    final_candidates: FrozenSet[int]
    identified: bool
    ticks_to_identify: Optional[int]

    def entropy_series(self) -> Tuple[float, ...]:
        """Adversary uncertainty (bits) after each observation."""
        return tuple(
            uniform_entropy(count) if count >= 1 else 0.0
            for count in self.candidate_counts
        )


class IntersectionAttack:
    """Intersect candidate sets across a pseudonym's cloak stream."""

    def user_candidates(self, timeline: CloakTimeline) -> IntersectionTrace:
        """Run the attack with per-tick population knowledge.

        At each tick, the candidates are the users inside the envelope's
        region at that moment; the running intersection keeps only users
        present in *every* region so far.
        """
        running: Optional[set] = None
        counts: List[int] = []
        identified_at: Optional[int] = None
        for index, entry in enumerate(timeline.successful_entries()):
            assert entry.envelope is not None
            present = set(
                entry.snapshot.users_in_region(set(entry.envelope.region))
            )
            running = present if running is None else (running & present)
            counts.append(len(running))
            if identified_at is None and len(running) == 1:
                identified_at = index
        final = frozenset(running) if running is not None else frozenset()
        return IntersectionTrace(
            candidate_counts=tuple(counts),
            final_candidates=final,
            identified=len(final) == 1,
            ticks_to_identify=identified_at,
        )

    def segment_candidates(self, timeline: CloakTimeline) -> Tuple[int, ...]:
        """The weaker region-only attack: segments common to every cloak.

        Against a *moving* user this often empties quickly (the user leaves
        old segments), which is itself informative: a non-empty long-run
        intersection betrays a stationary user.
        """
        running: Optional[set] = None
        for entry in timeline.successful_entries():
            assert entry.envelope is not None
            region = set(entry.envelope.region)
            running = region if running is None else (running & region)
        return tuple(sorted(running)) if running else ()
