"""Entropy measures for cloaking privacy (experiment E10).

The paper's security claim: without the key the cloaked region "preserves
strong privacy properties, allowing no additional information to be inferred
even when the adversary has complete knowledge about the location
perturbation algorithm". We quantify what each principal can infer as
Shannon entropy of their posterior over the user's true location:

* segment view (l-diversity): posterior over the region's segments,
* user view (k-anonymity): posterior over the users inside the region,
* with keys for levels ``j+1..top``: the posterior shrinks to level ``j``'s
  region — the quantitative meaning of "multi-level".
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, Iterable, Mapping, Sequence

from ..errors import QueryError
from ..mobility.snapshot import PopulationSnapshot

__all__ = [
    "shannon_entropy",
    "uniform_entropy",
    "segment_entropy",
    "user_entropy",
    "weighted_segment_entropy",
    "level_entropy_profile",
]


def shannon_entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy (bits) of a distribution.

    Zero-probability outcomes are skipped; probabilities must be
    non-negative and sum to ~1.
    """
    probs = [p for p in probabilities if p > 0.0]
    if not probs:
        return 0.0
    total = sum(probs)
    if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
        raise ValueError(f"probabilities sum to {total}, expected 1")
    return -sum(p * math.log2(p) for p in probs)


def uniform_entropy(n_outcomes: int) -> float:
    """Entropy of the uniform distribution over ``n_outcomes`` (bits)."""
    if n_outcomes < 1:
        raise ValueError(f"need at least one outcome, got {n_outcomes}")
    return math.log2(n_outcomes)


def segment_entropy(region: AbstractSet[int]) -> float:
    """Keyless adversary entropy over segments, assuming the uniform prior
    the algorithm's pseudo-random selection justifies."""
    if not region:
        raise ValueError("region must be non-empty")
    return uniform_entropy(len(region))


def user_entropy(region: AbstractSet[int], snapshot: PopulationSnapshot) -> float:
    """Keyless adversary entropy over user identities inside the region."""
    count = snapshot.count_in_region(region)
    if count < 1:
        raise ValueError("region holds no users")
    return uniform_entropy(count)


def weighted_segment_entropy(
    region: AbstractSet[int], snapshot: PopulationSnapshot
) -> float:
    """Adversary entropy over segments when weighting by observed occupancy.

    An adversary who knows per-segment population densities can sharpen the
    uniform prior to ``P(segment) ∝ users_on(segment)``; this entropy is the
    corresponding (lower) uncertainty. Segments with no users keep a small
    floor weight so they are not excluded outright (the user *is* on some
    segment regardless of co-travellers).
    """
    if not region:
        raise ValueError("region must be non-empty")
    floor = 0.25
    weights: Dict[int, float] = {
        segment_id: snapshot.count_on(segment_id) + floor for segment_id in region
    }
    total = sum(weights.values())
    return shannon_entropy(w / total for w in weights.values())


def level_entropy_profile(
    regions_by_level: Mapping[int, Sequence[int]],
    snapshot: PopulationSnapshot,
) -> Dict[int, Dict[str, float]]:
    """Entropy per privacy level for a peeled cloak.

    Args:
        regions_by_level: ``{level: region}`` as produced by
            :class:`~repro.core.engine.DeanonymizationResult`.
        snapshot: The population at cloaking time.

    Returns:
        ``{level: {"segments": bits, "users": bits}}``. Level 0 has zero
        segment entropy by definition.
    """
    profile: Dict[int, Dict[str, float]] = {}
    for level in sorted(regions_by_level):
        region = set(regions_by_level[level])
        users = snapshot.count_in_region(region)
        profile[level] = {
            "segments": segment_entropy(region),
            "users": uniform_entropy(users) if users >= 1 else 0.0,
        }
    return profile
