"""Adversary models and entropy metrics for the security experiments."""

from .adversary import KeyProbeAdversary, StructuralAdversary, StructuralPosterior
from .entropy import (
    level_entropy_profile,
    segment_entropy,
    shannon_entropy,
    uniform_entropy,
    user_entropy,
    weighted_segment_entropy,
)
from .intersection import IntersectionAttack, IntersectionTrace

__all__ = [
    "StructuralAdversary",
    "StructuralPosterior",
    "KeyProbeAdversary",
    "IntersectionAttack",
    "IntersectionTrace",
    "shannon_entropy",
    "uniform_entropy",
    "segment_entropy",
    "user_entropy",
    "weighted_segment_entropy",
    "level_entropy_profile",
]
