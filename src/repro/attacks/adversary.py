"""Adversary models probing ReverseCloak's security claims.

Two attacks (experiment E10):

* :class:`StructuralAdversary` — knows the algorithm, the map, and the
  envelope's public metadata (region, per-level step counts) but no keys.
  It enumerates every *structurally* consistent reversal — connectivity-
  preserving removal sequences — obtaining its exact posterior over inner
  regions and the user's segment. The paper's claim corresponds to this
  posterior staying (near-)uniform over many candidates.
* :class:`KeyProbeAdversary` — additionally tries candidate keys against the
  envelope's reversal procedure (certified search). Success requires
  guessing a 256-bit key; the class exists to verify that wrong keys are
  *rejected* rather than silently yielding plausible-looking regions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..errors import DeanonymizationError, KeyMismatchError, ReverseCloakError
from ..keys.keys import AccessKey
from ..roadnet.graph import RoadNetwork
from .entropy import shannon_entropy

__all__ = [
    "StructuralPosterior",
    "StructuralAdversary",
    "KeyProbeAdversary",
]


@dataclass(frozen=True)
class StructuralPosterior:
    """The keyless adversary's posterior after structural enumeration.

    Attributes:
        level: The level the adversary attempted to peel down to.
        candidate_regions: Every structurally consistent inner region.
        sequence_counts: Number of consistent removal sequences leading to
            each candidate region (the adversary's unnormalised weights —
            each sequence is equally likely under a uniform key prior).
    """

    level: int
    candidate_regions: Tuple[FrozenSet[int], ...]
    sequence_counts: Dict[FrozenSet[int], int]

    @property
    def candidate_count(self) -> int:
        return len(self.candidate_regions)

    def probability_of(self, region: AbstractSet[int]) -> float:
        """Posterior probability the true inner region is ``region``."""
        total = sum(self.sequence_counts.values())
        if total == 0:
            return 0.0
        return self.sequence_counts.get(frozenset(region), 0) / total

    def entropy(self) -> float:
        """Posterior entropy (bits) over candidate inner regions."""
        total = sum(self.sequence_counts.values())
        if total == 0:
            return 0.0
        return shannon_entropy(
            count / total for count in self.sequence_counts.values()
        )


class StructuralAdversary:
    """Keyless enumeration of consistent reversals.

    Args:
        network: The public road map.
        max_sequences: Cap on enumerated removal sequences per level; the
            search is exhaustive below the cap (small regions), sampled
            truth-preserving above it.
    """

    def __init__(self, network: RoadNetwork, max_sequences: int = 200_000) -> None:
        self._network = network
        self._max_sequences = max_sequences

    def enumerate_level(
        self, region: AbstractSet[int], steps: int
    ) -> StructuralPosterior:
        """All inner regions reachable by removing ``steps`` segments while
        keeping every intermediate region connected (and removable — i.e. a
        segment the forward pass *could* have added last)."""
        sequences = 0
        counts: Counter = Counter()
        stack: List[Tuple[FrozenSet[int], int]] = [(frozenset(region), 0)]
        # Depth-first over removal prefixes; a prefix of depth `steps` is one
        # consistent full sequence.
        while stack:
            current, depth = stack.pop()
            if depth == steps:
                counts[current] += 1
                sequences += 1
                if sequences >= self._max_sequences:
                    break
                continue
            for segment_id in self._network.articulation_free_removals(current):
                remaining = current - {segment_id}
                if remaining and any(
                    neighbor in remaining
                    for neighbor in self._network.neighbors(segment_id)
                ):
                    stack.append((remaining, depth + 1))
        regions = tuple(sorted(counts, key=lambda r: sorted(r)))
        return StructuralPosterior(
            level=steps, candidate_regions=regions, sequence_counts=dict(counts)
        )

    def attack_envelope(
        self, envelope: CloakEnvelope, target_level: int
    ) -> StructuralPosterior:
        """Enumerate consistent reversals of ``envelope`` down to
        ``target_level`` using only public metadata."""
        total_steps = sum(
            envelope.level_record(level).steps
            for level in range(target_level + 1, envelope.top_level + 1)
        )
        return self.enumerate_level(set(envelope.region), total_steps)

    def user_segment_posterior(
        self, envelope: CloakEnvelope
    ) -> Dict[int, float]:
        """Posterior over the user's segment after full structural reversal.

        Aggregates the level-0 candidates (single segments) of
        :meth:`attack_envelope`; the paper's claim is that this stays spread
        over many segments.
        """
        posterior = self.attack_envelope(envelope, target_level=0)
        weights: Dict[int, float] = {}
        total = sum(posterior.sequence_counts.values())
        for region, count in posterior.sequence_counts.items():
            if len(region) == 1:
                (segment_id,) = tuple(region)
                weights[segment_id] = weights.get(segment_id, 0.0) + count / total
        return weights


class KeyProbeAdversary:
    """Tries candidate keys against an envelope's keyed reversal.

    The point is negative: with overwhelming probability every probe is
    *rejected* (MAC mismatch / no certified reversal), demonstrating that
    algorithm knowledge plus compute does not substitute for the key.
    """

    def __init__(self, network: RoadNetwork, seed: int = 0) -> None:
        self._network = network
        self._rng = np.random.default_rng(seed)

    def probe(
        self, envelope: CloakEnvelope, trials: int
    ) -> Dict[str, int]:
        """Attempt ``trials`` random full key chains.

        Returns ``{"rejected": ..., "accepted": ...}``; ``accepted`` counts
        probes that produced *any* certified reversal (expected 0).
        """
        engine = ReverseCloakEngine.for_envelope(self._network, envelope)
        outcomes = {"rejected": 0, "accepted": 0}
        for __ in range(trials):
            fake_keys = {
                level: AccessKey(level, bytes(self._rng.bytes(32)))
                for level in range(1, envelope.top_level + 1)
            }
            try:
                engine.deanonymize(
                    envelope, fake_keys, target_level=0, mode="search"
                )
            except ReverseCloakError:
                outcomes["rejected"] += 1
            else:  # pragma: no cover - astronomically unlikely
                outcomes["accepted"] += 1
        return outcomes
