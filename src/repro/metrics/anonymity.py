"""Anonymity and region-quality metrics (experiment E9).

The full paper evaluates cloaks by how much anonymity they achieve relative
to what was requested and by how large the exposed region is. This module
computes those figures from a region, a snapshot and (optionally) the
requesting profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Mapping, Optional, Sequence

from ..core.profile import LevelRequirement
from ..mobility.snapshot import PopulationSnapshot
from ..roadnet.graph import RoadNetwork

__all__ = ["RegionQuality", "region_quality", "nesting_ratios"]


@dataclass(frozen=True)
class RegionQuality:
    """Quality figures of one cloaking region.

    Attributes:
        segments: Number of segments (the achieved ``l``).
        users: Number of users inside (the achieved ``k``).
        total_length: Summed road length, metres.
        diagonal: Bounding-box diagonal, metres (spatial exposure).
        relative_k: ``achieved_k / requested_k`` (>= 1 for a successful
            cloak); ``None`` when no requirement was supplied.
        relative_l: ``achieved_l / requested_l``; ``None`` likewise.
    """

    segments: int
    users: int
    total_length: float
    diagonal: float
    relative_k: Optional[float]
    relative_l: Optional[float]

    def meets(self, requirement: LevelRequirement) -> bool:
        """Whether the region satisfies ``requirement``'s ``k`` and ``l``."""
        return self.users >= requirement.k and self.segments >= requirement.l


def region_quality(
    network: RoadNetwork,
    region: AbstractSet[int],
    snapshot: PopulationSnapshot,
    requirement: Optional[LevelRequirement] = None,
) -> RegionQuality:
    """Compute :class:`RegionQuality` for ``region``."""
    if not region:
        raise ValueError("region must be non-empty")
    users = snapshot.count_in_region(region)
    segments = len(region)
    return RegionQuality(
        segments=segments,
        users=users,
        total_length=network.total_length(region),
        diagonal=network.bounding_box(region).diagonal,
        relative_k=(users / requirement.k) if requirement else None,
        relative_l=(segments / requirement.l) if requirement else None,
    )


def nesting_ratios(
    regions_by_level: Mapping[int, Sequence[int]]
) -> Dict[int, float]:
    """Per-level size reduction of a peeled cloak.

    ``ratios[level] = |region(level)| / |region(level+1)|`` — how much a
    requester gains by unlocking one more level. Levels must nest
    (each region a subset of the next); raises otherwise.
    """
    levels = sorted(regions_by_level)
    ratios: Dict[int, float] = {}
    for lower, upper in zip(levels, levels[1:]):
        inner = set(regions_by_level[lower])
        outer = set(regions_by_level[upper])
        if not inner <= outer:
            raise ValueError(
                f"region of level {lower} is not nested inside level {upper}"
            )
        ratios[lower] = len(inner) / len(outer) if outer else 0.0
    return ratios
