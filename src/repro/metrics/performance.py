"""Timing and memory accounting used by the performance experiments.

pytest-benchmark handles the statistically careful timing inside
``benchmarks/``; this module provides the lighter-weight instruments the
harness and examples use: a wall-clock timer context, repeated-measurement
summaries, and deep object sizing for the RGE/RPLE memory trade-off (E7).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from statistics import mean, median, stdev
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["Timer", "TimingSummary", "measure", "deep_sizeof"]


class Timer:
    """A context-manager wall-clock timer.

    Example:
        >>> with Timer() as timer:
        ...     __ = sum(range(1000))
        >>> timer.elapsed > 0
        True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass(frozen=True)
class TimingSummary:
    """Summary of repeated measurements (seconds)."""

    repeats: int
    mean_s: float
    median_s: float
    stdev_s: float
    min_s: float
    max_s: float

    def __str__(self) -> str:
        return (
            f"{self.mean_s * 1e3:.3f} ms mean over {self.repeats} runs "
            f"(median {self.median_s * 1e3:.3f}, min {self.min_s * 1e3:.3f}, "
            f"max {self.max_s * 1e3:.3f})"
        )


def measure(fn: Callable[[], Any], repeats: int = 5) -> TimingSummary:
    """Time ``fn()`` ``repeats`` times (no warmup discard; callers that need
    one should invoke ``fn`` once beforehand)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples: List[float] = []
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingSummary(
        repeats=repeats,
        mean_s=mean(samples),
        median_s=median(samples),
        stdev_s=stdev(samples) if len(samples) > 1 else 0.0,
        min_s=min(samples),
        max_s=max(samples),
    )


def deep_sizeof(obj: Any, _seen: Optional[Set[int]] = None) -> int:
    """Recursive ``sys.getsizeof`` over containers and object ``__dict__``s.

    An approximation (shared interned objects are counted once via the seen
    set), adequate for comparing the *relative* footprints of RGE state,
    RPLE pre-assignment tables and the mapping store.
    """
    seen = _seen if _seen is not None else set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            deep_sizeof(key, seen) + deep_sizeof(value, seen)
            for key, value in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    return size
