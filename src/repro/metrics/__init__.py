"""Quality and performance metrics for the evaluation harness."""

from .anonymity import RegionQuality, nesting_ratios, region_quality
from .performance import Timer, TimingSummary, deep_sizeof, measure

__all__ = [
    "RegionQuality",
    "region_quality",
    "nesting_ratios",
    "Timer",
    "TimingSummary",
    "measure",
    "deep_sizeof",
]
