"""Scope and alias tracking shared by the ``reprolint`` rules.

Rules reason about *resolved* names, not surface syntax: ``Lock()`` after
``from threading import Lock``, ``threading.Lock()``, and
``import threading as t; t.Lock()`` are the same callable. The
:class:`ImportTable` resolves a ``Name``/``Attribute`` chain to its dotted
module path; the mutation helpers classify attribute writes
(``self.x = ...``, ``self.x += 1``, ``self.x[k] = v``, ``self.x.pop()``)
and report which lock attributes the enclosing ``with`` statements hold —
the machinery behind the lock-discipline and bounded-cache rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ImportTable",
    "AttrMutation",
    "MUTATING_METHODS",
    "SHRINKING_METHODS",
    "dotted_name",
    "iter_attr_mutations",
    "held_attr_locks",
    "held_global_locks",
    "enclosing_function",
    "names_in",
]

#: Methods that mutate their receiver (dict/list/set/OrderedDict).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: The subset of mutators that can *shrink* a container (the bounded-cache
#: rule accepts any of these — or an explicit ``len()`` bound — as
#: evidence of an eviction path).
SHRINKING_METHODS = frozenset({"pop", "popitem", "remove", "discard", "clear"})


class ImportTable:
    """Alias resolution for one module.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from threading
    import Lock as L`` maps ``L`` to ``threading.Lock``. :meth:`resolve`
    expands the leading alias of a ``Name``/``Attribute`` chain into the
    full dotted path, so rules can match on canonical names.

    When the module's own *package* is known (``package="repro.lbs"`` for
    ``repro/lbs/frontend.py``), relative imports resolve too: ``from
    .service import AnonymizerService`` maps ``AnonymizerService`` to
    ``repro.lbs.service.AnonymizerService`` — what lets the call graph
    follow edges across this repository's own modules, which import each
    other relatively throughout.
    """

    def __init__(
        self, tree: Optional[ast.AST], package: Optional[str] = None
    ) -> None:
        self.aliases: Dict[str, str] = {}
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base: Optional[str] = None
                if not node.level:
                    base = node.module
                elif package is not None:
                    parts = package.split(".")
                    if node.level - 1 < len(parts):
                        hops = parts[: len(parts) - (node.level - 1)]
                        base = ".".join(
                            hops + ([node.module] if node.module else [])
                        )
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted path of a ``Name``/``Attribute`` chain, aliases
        expanded — ``None`` when the chain roots in anything else (a call
        result, a subscript, ``self``)."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        head = self.aliases.get(cursor.id, cursor.id)
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass(frozen=True)
class AttrMutation:
    """One write to ``<owner>.<attr>`` (or a module-level ``<name>``).

    Attributes:
        attr: The attribute (or global) being mutated.
        node: The mutating statement/expression node.
        kind: ``"assign"`` / ``"augassign"`` / ``"subscript"`` / ``"del"``
            or the mutating method name (``"pop"``, ``"setdefault"``, ...).
        key: For ``subscript`` writes and ``setdefault`` calls, the key
            expression (taint analysis uses it).
    """

    attr: str
    node: ast.AST
    kind: str
    key: Optional[ast.AST] = None


def _self_attr(node: ast.AST, owner: str = "self") -> Optional[str]:
    """``attr`` when ``node`` is exactly ``<owner>.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == owner
    ):
        return node.attr
    return None


def iter_attr_mutations(
    root: ast.AST, owner: str = "self"
) -> Iterator[AttrMutation]:
    """Every mutation of ``<owner>.<attr>`` under ``root``.

    Covers plain and augmented assignment, subscript writes and deletes,
    and calls of :data:`MUTATING_METHODS` on the attribute.
    """
    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target, owner)
                if attr is not None:
                    yield AttrMutation(attr, node, "assign")
                elif isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value, owner)
                    if attr is not None:
                        yield AttrMutation(attr, node, "subscript", target.slice)
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target, owner)
            if attr is not None:
                yield AttrMutation(attr, node, "augassign")
            elif isinstance(node.target, ast.Subscript):
                attr = _self_attr(node.target.value, owner)
                if attr is not None:
                    yield AttrMutation(attr, node, "subscript", node.target.slice)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value, owner)
                    if attr is not None:
                        yield AttrMutation(attr, node, "del", target.slice)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                attr = _self_attr(node.func.value, owner)
                if attr is not None:
                    key = node.args[0] if node.args else None
                    yield AttrMutation(attr, node, node.func.attr, key)


def iter_global_mutations(root: ast.AST, names: Set[str]) -> Iterator[AttrMutation]:
    """Every mutation of the module-level ``names`` under ``root`` —
    the global twin of :func:`iter_attr_mutations` (rebinding via plain
    ``NAME = ...`` is excluded: inside functions that is a local unless
    declared ``global``, and rebinding a cache wholesale is a reset, not
    growth)."""
    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    yield AttrMutation(
                        target.value.id, node, "subscript", target.slice
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    yield AttrMutation(target.value.id, node, "del", target.slice)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                key = node.args[0] if node.args else None
                yield AttrMutation(node.func.value.id, node, node.func.attr, key)


def _with_lock_attrs(item: ast.withitem, owner: str) -> Optional[str]:
    expr = item.context_expr
    # `with self._lock:` and `with self._lock as held:` both guard.
    return _self_attr(expr, owner)


def held_attr_locks(node: ast.AST, owner: str = "self") -> Set[str]:
    """The ``<owner>.<lock>`` attributes held by ``with`` statements
    enclosing ``node`` (walks ``parent`` backlinks)."""
    held: Set[str] = set()
    cursor = getattr(node, "parent", None)
    while cursor is not None:
        if isinstance(cursor, ast.With):
            for item in cursor.items:
                attr = _with_lock_attrs(item, owner)
                if attr is not None:
                    held.add(attr)
        cursor = getattr(cursor, "parent", None)
    return held


def held_global_locks(node: ast.AST) -> Set[str]:
    """The module-level lock *names* held by enclosing ``with`` statements."""
    held: Set[str] = set()
    cursor = getattr(node, "parent", None)
    while cursor is not None:
        if isinstance(cursor, ast.With):
            for item in cursor.items:
                if isinstance(item.context_expr, ast.Name):
                    held.add(item.context_expr.id)
        cursor = getattr(cursor, "parent", None)
    return held


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """The nearest enclosing function/method definition, if any."""
    cursor = getattr(node, "parent", None)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = getattr(cursor, "parent", None)
    return None


def names_in(node: Optional[ast.AST]) -> Set[str]:
    """Every ``Name`` referenced under ``node`` (taint propagation)."""
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def function_params(func: ast.AST) -> Set[str]:
    """The parameter names of a function definition (minus ``self``/``cls``)."""
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return {name for name in names if name not in ("self", "cls")}


def tainted_locals(func: ast.AST) -> Set[str]:
    """Names in ``func`` whose values (conservatively) derive from its
    parameters: the parameters themselves plus, in one forward pass per
    statement order, any local assigned an expression referencing an
    already-tainted name. Loop variables iterating over a tainted
    iterable are tainted too."""
    tainted = set(function_params(func))
    # Two passes reach fixpoint for the simple chains rules care about.
    for _ in range(2):
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if names_in(node.value) & tainted:
                    for target in node.targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                tainted.add(name.id)
            elif isinstance(node, ast.AugAssign):
                if names_in(node.value) & tainted and isinstance(
                    node.target, ast.Name
                ):
                    tainted.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if names_in(node.iter) & tainted:
                    for name in ast.walk(node.target):
                        if isinstance(name, ast.Name):
                            tainted.add(name.id)
            elif isinstance(node, ast.comprehension):
                if names_in(node.iter) & tainted:
                    for name in ast.walk(node.target):
                        if isinstance(name, ast.Name):
                            tainted.add(name.id)
    return tainted


def call_args(node: ast.Call) -> Sequence[Tuple[Optional[str], ast.AST]]:
    """(keyword-or-None, value) pairs of a call's arguments."""
    out: List[Tuple[Optional[str], ast.AST]] = [(None, arg) for arg in node.args]
    out.extend((kw.arg, kw.value) for kw in node.keywords)
    return out
