"""The core of ``reprolint``, the project's AST-based invariant linter.

Six PRs of growth produced a handful of bug classes that kept resurfacing
by hand: unbounded attacker-growable caches (fixed in PR 4 *and* PR 5),
racy unguarded counters (PR 2), wire documents silently losing
byte-identical compatibility, and nondeterminism leaking into the
byte-identical envelope oracle. This package turns each class into a
machine-checked rule over the parsed source tree — no imports, no
execution, just :mod:`ast` — so later PRs cannot reintroduce them.

This module holds the pieces every rule shares:

* :class:`Finding` — one reported violation (rule id, location, message),
  with the stable :meth:`Finding.fingerprint` the baseline file matches on;
* :class:`ModuleInfo` — one parsed source file: the AST (parent links
  annotated), the raw lines, and the per-line suppression table parsed
  from ``# reprolint: disable=<rule>[,<rule>...]`` comments;
* :class:`Project` — the whole scanned file set, for rules that need
  cross-module context (the error-code registry checks ``errors.py``
  against every use site).

Suppressions: a ``# reprolint: disable=rule`` comment suppresses that
rule on its own line; a comment-only line suppresses the next code line
(so justifications can sit above long statements); and a
``# reprolint: disable-file=rule`` comment anywhere suppresses the rule
for the whole file. ``disable=all`` suppresses every rule.
"""

from __future__ import annotations

import ast
import hashlib
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "parse_module",
    "collect_modules",
    "attach_parents",
    "purge_parse_cache",
]

#: Matches one suppression comment. Rules are comma-separated ids;
#: ``all`` disables everything on the governed line(s).
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: The reporting rule's id (e.g. ``"lock-discipline"``).
        path: Repo-relative POSIX path of the flagged file.
        line: 1-based line of the flagged node.
        message: Human-readable description of the violation.
        context: The stripped source text of the flagged line — part of the
            :meth:`fingerprint`, so baseline entries survive unrelated line
            drift in the same file.
    """

    rule: str
    path: str
    line: int
    message: str
    context: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """The baseline identity of this finding: (rule, path, context).

        Deliberately excludes the line number — inserting code above an
        accepted finding must not invalidate the baseline — and the
        message, which may carry incidental detail.
        """
        return (self.rule, self.path, self.context)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def attach_parents(tree: ast.AST) -> ast.AST:
    """Annotate every node with a ``parent`` backlink (rules walk up to
    find enclosing ``if``/``with``/function scopes)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]
    tree.parent = None  # type: ignore[attr-defined]
    return tree


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression table."""

    path: Path
    rel_path: str
    source: str
    lines: List[str]
    tree: Optional[ast.Module]
    #: line -> rule ids suppressed on that line ("all" suppresses any).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_suppressions: Set[str] = field(default_factory=set)
    #: Syntax error message when the file failed to parse (tree is None).
    parse_error: Optional[str] = None

    @property
    def name(self) -> str:
        return self.path.name

    def context_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=int(line),
            message=message,
            context=self.context_at(int(line)),
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "all" in self.file_suppressions:
            return True
        rules = self.suppressions.get(line)
        return bool(rules) and (rule in rules or "all" in rules)


def _parse_suppressions(
    lines: List[str],
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for index, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        kind = match.group(1)
        rules = {
            item.strip() for item in match.group(2).split(",") if item.strip()
        }
        if kind == "disable-file":
            per_file |= rules
            continue
        per_line.setdefault(index, set()).update(rules)
        if text.lstrip().startswith("#"):
            # A standalone suppression comment governs the next code line,
            # so the justification can sit above the flagged statement.
            cursor = index + 1
            while cursor <= len(lines) and (
                not lines[cursor - 1].strip()
                or lines[cursor - 1].lstrip().startswith("#")
            ):
                cursor += 1
            if cursor <= len(lines):
                per_line.setdefault(cursor, set()).update(rules)
    return per_line, per_file


# ----------------------------------------------------------------------
# parse cache
# ----------------------------------------------------------------------
# Parsing (ast.parse + parent links + suppression tables) dominates a
# full-tree run, and the gate re-parses an identical tree on every
# invocation inside one process (the test suite calls run_analysis dozens
# of times). The cache memoizes ModuleInfo keyed on (path, root) and
# *content hash* — an edited file re-parses, an untouched one is returned
# as-is. Rules treat ModuleInfo as read-only, so sharing the object (and
# its AST) across runs is safe. Bounded LRU: the key derives from
# caller-supplied paths, so the cache must not be growable without limit.
_PARSE_CACHE_MAX = 2048
_PARSE_CACHE: "OrderedDict[Tuple[str, str], Tuple[str, ModuleInfo]]" = (
    OrderedDict()
)
_PARSE_CACHE_LOCK = threading.Lock()


def purge_parse_cache() -> None:
    """Drop every cached parse (tests; long-lived tools after bulk edits)."""
    with _PARSE_CACHE_LOCK:
        _PARSE_CACHE.clear()


def _content_digest(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()


def parse_module(
    path: Path,
    root: Path,
    *,
    link_parents: bool = True,
    use_cache: bool = True,
) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (never raises on bad
    source — syntax errors surface as ``parse_error``).

    ``link_parents=False`` skips the parent-backlink pass — the parallel
    parse path uses it so worker processes ship cycle-free trees, with
    the links attached on receipt. ``use_cache=False`` bypasses the
    content-hash memo (workers again: their cache dies with them).
    """
    raw = path.read_bytes()
    source = raw.decode("utf-8")
    key = (str(path.resolve()), str(root.resolve()))
    digest = _content_digest(raw)
    if use_cache:
        with _PARSE_CACHE_LOCK:
            entry = _PARSE_CACHE.get(key)
            if entry is not None and entry[0] == digest:
                _PARSE_CACHE.move_to_end(key)
                return entry[1]
    lines = source.splitlines()
    try:
        rel_path = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel_path = path.as_posix()
    per_line, per_file = _parse_suppressions(lines)
    try:
        tree = ast.parse(source, filename=str(path))
        if link_parents:
            attach_parents(tree)
        error = None
    except SyntaxError as exc:
        tree = None
        error = f"{exc.msg} (line {exc.lineno})"
    module = ModuleInfo(
        path=path,
        rel_path=rel_path,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=per_line,
        file_suppressions=per_file,
        parse_error=error,
    )
    if use_cache and link_parents:
        _cache_store(key, digest, module)
    return module


def _cache_store(key: Tuple[str, str], digest: str, module: ModuleInfo) -> None:
    with _PARSE_CACHE_LOCK:
        _PARSE_CACHE[key] = (digest, module)
        _PARSE_CACHE.move_to_end(key)
        while len(_PARSE_CACHE) > _PARSE_CACHE_MAX:
            _PARSE_CACHE.popitem(last=False)


@dataclass
class Project:
    """The scanned file set: what project-level rules see."""

    root: Path
    modules: List[ModuleInfo]
    _call_graph: Optional[object] = field(default=None, repr=False)

    def modules_named(self, filename: str) -> List[ModuleInfo]:
        return [module for module in self.modules if module.name == filename]

    def call_graph(self):
        """The project-wide call graph, built lazily on first use and
        shared by every interprocedural rule in the run (see
        :mod:`repro.analysis.callgraph`)."""
        if self._call_graph is None:
            from .callgraph import CallGraph

            self._call_graph = CallGraph.build(self)
        return self._call_graph


#: Below this many files the process-pool fan-out costs more than it
#: saves; parse serially no matter what ``jobs`` asks for.
_PARALLEL_MIN_FILES = 8


def _parse_worker(args: Tuple[str, str]) -> ModuleInfo:
    """Process-pool entry point: parse one file without parent links
    (backlinks make the tree cyclic and balloon the pickle; the parent
    process attaches them on receipt)."""
    path_str, root_str = args
    return parse_module(
        Path(path_str), Path(root_str), link_parents=False, use_cache=False
    )


def _parse_files(files: List[Path], root: Path, jobs: int) -> List[ModuleInfo]:
    if jobs <= 1 or len(files) < _PARALLEL_MIN_FILES:
        return [parse_module(item, root) for item in files]
    # Serve cache hits in-process; farm only the misses out.
    modules: List[Optional[ModuleInfo]] = [None] * len(files)
    misses: List[int] = []
    root_key = str(root.resolve())
    digests: Dict[int, Tuple[Tuple[str, str], str]] = {}
    for index, path in enumerate(files):
        key = (str(path.resolve()), root_key)
        digest = _content_digest(path.read_bytes())
        digests[index] = (key, digest)
        with _PARSE_CACHE_LOCK:
            entry = _PARSE_CACHE.get(key)
            if entry is not None and entry[0] == digest:
                _PARSE_CACHE.move_to_end(key)
                modules[index] = entry[1]
                continue
        misses.append(index)
    if misses:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            parsed = pool.map(
                _parse_worker,
                [(str(files[i]), str(root)) for i in misses],
            )
            for index, module in zip(misses, parsed):
                if module.tree is not None:
                    attach_parents(module.tree)
                key, digest = digests[index]
                _cache_store(key, digest, module)
                modules[index] = module
    return [module for module in modules if module is not None]


def collect_modules(
    paths: Iterable[Path], root: Path, jobs: int = 1
) -> Project:
    """Parse every ``.py`` file under ``paths`` (files or directories)
    into one :class:`Project`, sorted by path for deterministic output.
    ``jobs > 1`` parses cache misses on a process pool."""
    seen: Set[Path] = set()
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(candidate)
        elif path.suffix == ".py":
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(path)
    files.sort(key=lambda item: item.as_posix())
    return Project(root=root, modules=_parse_files(files, root, jobs))
