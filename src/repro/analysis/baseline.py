"""The checked-in findings baseline of ``reprolint``.

A baseline makes *accepted* findings explicit and reviewable: the CI gate
fails on findings that are new relative to the committed file, never on
the accepted backlog. Matching is by :meth:`Finding.fingerprint` —
``(rule, path, context line)`` — deliberately line-number-free so edits
above an accepted finding do not invalidate it, and count-aware so a
*second* occurrence of an accepted pattern still fails.

The file is plain JSON (sorted, one entry per accepted fingerprint with a
count) so diffs in review show exactly which debts were added or paid
down. Regenerate with ``python -m repro.analysis --write-baseline``; the
tool also reports *stale* entries (accepted findings that no longer
occur) so the baseline cannot quietly rot.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from .core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME", "split_findings"]

DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

_Fingerprint = Tuple[str, str, str]


@dataclass
class Baseline:
    """Accepted finding fingerprints with multiplicities."""

    entries: Dict[_Fingerprint, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "accepted" not in document:
            raise ValueError(f"{path}: not a reprolint baseline file")
        entries: Dict[_Fingerprint, int] = {}
        for item in document["accepted"]:
            fingerprint = (
                str(item["rule"]),
                str(item["path"]),
                str(item.get("context", "")),
            )
            entries[fingerprint] = entries.get(fingerprint, 0) + int(
                item.get("count", 1)
            )
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts = Counter(finding.fingerprint() for finding in findings)
        return cls(entries=dict(counts))

    def to_json(self) -> str:
        accepted = [
            {"rule": rule, "path": path, "context": context, "count": count}
            for (rule, path, context), count in sorted(self.entries.items())
        ]
        return (
            json.dumps({"version": 1, "accepted": accepted}, indent=2, sort_keys=True)
            + "\n"
        )

    def save(self, path: Path) -> None:
        path.write_text(self.to_json(), encoding="utf-8")


def split_findings(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[_Fingerprint]]:
    """Partition ``findings`` against ``baseline``.

    Returns ``(new_findings, stale_entries)``: findings beyond the
    accepted multiplicity of their fingerprint, and baseline entries whose
    accepted occurrences no longer all exist (the baseline should be
    regenerated to pay the debt down explicitly).
    """
    budget = Counter(
        {fingerprint: count for fingerprint, count in baseline.entries.items()}
    )
    new: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
        else:
            new.append(finding)
    stale = sorted(
        fingerprint for fingerprint, remaining in budget.items() if remaining > 0
    )
    return new, stale
