"""The ``reprolint`` command line: ``python -m repro.analysis [paths]``.

Exit status is the CI contract:

* ``0`` — no findings beyond the baseline (clean tree);
* ``1`` — new findings (or, with ``--strict-baseline``, stale baseline
  entries that should be paid down);
* ``2`` — usage errors.

``--format=json`` emits a machine-readable report (the CI job archives
it); ``--format=sarif`` a SARIF 2.1.0 log for GitHub code scanning;
``--write-baseline`` regenerates the committed baseline from the current
findings so accepted debt stays an explicit, reviewed file. ``--jobs N``
parses cache-miss files on a process pool (exit codes unchanged).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import DEFAULT_BASELINE_NAME, Baseline, split_findings
from .registry import all_rules, run_analysis

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based invariant linter for the ReverseCloak "
            "serving stack (lock discipline, bounded caches, wire "
            "round-trips, determinism, error-code registry)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "report format (default: text); sarif emits a SARIF 2.1.0 "
            "log for GitHub code scanning"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "parse cache-miss files on N worker processes (default: 1; "
            "small scans stay serial regardless)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when it "
            "exists); accepted findings listed there do not fail the run"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when baseline entries are stale (debt paid down "
        "but the file not regenerated)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _resolve_baseline(args) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.description}")
        return 0

    paths = [Path(item) for item in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    findings = run_analysis(paths, root=Path.cwd(), jobs=args.jobs)

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        Baseline.from_findings(findings).save(target)
        print(
            f"wrote {len(findings)} accepted finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        new_findings, stale = split_findings(findings, baseline)
    else:
        baseline = None
        new_findings, stale = findings, []

    if args.format == "sarif":
        from .sarif import render_sarif

        print(json.dumps(render_sarif(new_findings, all_rules()), indent=2))
    elif args.format == "json":
        report = {
            "version": 1,
            "findings": [finding.to_dict() for finding in new_findings],
            "baselined": len(findings) - len(new_findings),
            "stale_baseline_entries": [
                {"rule": rule, "path": path, "context": context}
                for rule, path, context in stale
            ],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in new_findings:
            print(finding.render())
        if stale:
            print(
                f"note: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} (regenerate with "
                "--write-baseline to pay the debt down):",
                file=sys.stderr,
            )
            for rule, path, context in stale:
                print(f"  [{rule}] {path}: {context}", file=sys.stderr)
        suffix = (
            f" ({len(findings) - len(new_findings)} baselined)"
            if baseline is not None
            else ""
        )
        print(
            f"reprolint: {len(new_findings)} finding(s){suffix}",
            file=sys.stderr,
        )

    if new_findings:
        return 1
    if stale and args.strict_baseline:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
