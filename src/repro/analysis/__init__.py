"""``reprolint`` — the project's AST-based invariant linter.

Static analysis that encodes this repository's hard-won serving
invariants as machine-checked rules (see :mod:`repro.analysis.rules` for
the catalogue and :mod:`repro.analysis.core` for the framework). Run it
with ``python -m repro.analysis [--format=text|json] [paths]``; CI gates
every PR on it against the committed ``.reprolint-baseline.json``.

Public API: :func:`run_analysis` scans paths and returns
:class:`Finding` objects (suppressions applied, baseline not — the CLI
layers that); :func:`all_rules` lists the registered rules.
"""

from .baseline import Baseline, split_findings
from .core import Finding, ModuleInfo, Project
from .registry import Rule, all_rules, register, run_analysis

__all__ = [
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "register",
    "run_analysis",
    "split_findings",
]
