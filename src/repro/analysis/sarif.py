"""SARIF 2.1.0 rendering of a ``reprolint`` run.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests: uploading one file per run turns findings into
inline PR annotations with per-rule descriptions, without any custom
glue. This module emits the minimal valid subset:

* one ``run`` with a ``tool.driver`` listing every rule that *could*
  have fired (id + short description), so the UI can render rule help
  even for rules with zero results;
* one ``result`` per post-baseline finding, with the repo-relative URI
  and 1-based start line GitHub needs to place the annotation;
* a ``partialFingerprints`` entry derived from the finding's baseline
  fingerprint, so GitHub tracks an alert across pushes the same way the
  committed baseline does — line-number-free, context-keyed.

The JSON report stays the machine-readable contract for everything else
(the CI artifact, the meta-tests); SARIF is presentation only and adds
no new fields to :class:`~repro.analysis.core.Finding`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

from .core import Finding
from .registry import PARSE_ERROR_RULE, Rule

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _fingerprint_of(finding: Finding) -> str:
    rule, path, context = finding.fingerprint()
    digest = hashlib.sha256(
        f"{rule}\x00{path}\x00{context}".encode("utf-8")
    ).hexdigest()
    return digest[:32]


def render_sarif(
    findings: Iterable[Finding], rules: Iterable[Rule]
) -> dict:
    """The SARIF log (as a plain dict, ready for ``json.dumps``) of one
    run: ``findings`` are the *post-baseline* findings the run reports,
    ``rules`` the registered catalogue."""
    rule_descriptors: List[dict] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
        }
        for rule in rules
    ]
    rule_descriptors.append(
        {
            "id": PARSE_ERROR_RULE,
            "shortDescription": {
                "text": "file does not parse; every other finding in it "
                "is hidden"
            },
        }
    )
    rule_index = {
        descriptor["id"]: index
        for index, descriptor in enumerate(rule_descriptors)
    }
    results: List[dict] = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
            "partialFingerprints": {
                "reprolintFingerprint/v1": _fingerprint_of(finding)
            },
        }
        index = rule_index.get(finding.rule)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rule_descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
