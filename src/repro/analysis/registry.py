"""The rule registry of ``reprolint``.

A rule is a class with a stable ``id`` (the name suppression comments and
the baseline refer to), a one-line ``description``, and one or both of:

* :meth:`Rule.check_module` — called once per parsed file;
* :meth:`Rule.check_project` — called once with the whole scanned set
  (for cross-module invariants like the error-code registry).

Registering is declarative::

    @register
    class MyRule(Rule):
        id = "my-rule"
        description = "what invariant this encodes"

        def check_module(self, module, project):
            yield module.finding(self.id, node, "message")

The analyzer driver (:func:`run_analysis`) parses the file set, runs
every registered rule, drops suppressed findings, and returns the rest
sorted by location. Parse failures surface as findings of the reserved
``parse-error`` rule rather than crashing the run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Type

from .core import Finding, ModuleInfo, Project, collect_modules

__all__ = ["Rule", "register", "all_rules", "run_analysis", "PARSE_ERROR_RULE"]

#: Reserved rule id for files that fail to parse (not suppressible by
#: design: a syntax error hides every other finding in the file).
PARSE_ERROR_RULE = "parse-error"


class Rule:
    """Base class of every lint rule."""

    id: str = ""
    description: str = ""

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY and _REGISTRY[rule_cls.id] is not rule_cls:
        raise ValueError(f"duplicate rule id: {rule_cls.id}")
    # Import-time registration, bounded by the rule catalogue — never a
    # request path.
    # reprolint: disable=bounded-cache
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id.

    Importing :mod:`repro.analysis.rules` populates the registry; the
    import lives here so API users calling :func:`run_analysis` directly
    get the built-in rules without extra ceremony.
    """
    from . import rules  # noqa: F401  (import populates the registry)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def run_analysis(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[List[Rule]] = None,
    jobs: int = 1,
) -> List[Finding]:
    """Parse ``paths`` and run ``rules`` (default: all registered).

    Returns unsuppressed findings sorted by (path, line, rule). The
    returned list is *pre-baseline*: the CLI applies the baseline file on
    top of this. ``jobs > 1`` parallelizes the parse of cache-miss files
    across processes (see :func:`~repro.analysis.core.collect_modules`).
    """
    paths = [Path(item) for item in paths]
    if root is None:
        root = Path.cwd()
    project = collect_modules(paths, root, jobs=jobs)
    active = rules if rules is not None else all_rules()
    findings: List[Finding] = []
    for module in project.modules:
        if module.tree is None:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=module.rel_path,
                    line=1,
                    message=f"file does not parse: {module.parse_error}",
                )
            )
            continue
        for rule in active:
            for finding in rule.check_module(module, project):
                if not module.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    modules_by_path = {module.rel_path: module for module in project.modules}
    for rule in active:
        for finding in rule.check_project(project):
            module = modules_by_path.get(finding.path)
            if module is None or not module.is_suppressed(
                finding.rule, finding.line
            ):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
