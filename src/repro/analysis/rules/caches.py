"""``bounded-cache`` — caches fed by request data must have an eviction path.

The bug class this repository fixed twice: PR 4 found module-level memos
(`_TRANSITION_DOMAINS`, the wire profile cache) growing without bound
under attacker-churned request parameters, and PR 5 found the same shape
again in ``AnonymizerService._reversal_engines`` — an
``{algorithm spec: engine}`` dict keyed by fields the ``handle`` endpoint
takes from the wire. Long-running serving + attacker-controlled keys +
no eviction = memory exhaustion.

The rule flags a container when all of the following hold:

* it is *long-lived*: a module-level ``{}``/``dict()``/``OrderedDict()``
  assignment, or an instance attribute initialized empty in ``__init__``;
* it *grows under external influence*: some method/function outside
  ``__init__`` performs ``container[key] = ...`` (or ``setdefault``)
  where the key expression derives from the enclosing function's
  parameters (a conservative forward taint pass — request-independent
  rebuild loops like RPLE pre-assignment do not trigger);
* it has *no eviction or bound anywhere in the owning scope*: no
  ``pop``/``popitem``/``clear``/``del container[...]`` and no
  ``len(container)`` comparison (the ``while len(c) > CAP: c.popitem()``
  idiom every bounded cache in this repo uses).

A fixed-key write (``state["engine"] = ...``) is configuration, not
growth, and never triggers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register
from ..visitor import (
    SHRINKING_METHODS,
    enclosing_function,
    iter_attr_mutations,
    iter_global_mutations,
    names_in,
    tainted_locals,
)

_EMPTY_FACTORIES = {"dict", "OrderedDict", "defaultdict"}


def _is_empty_dict_init(value: ast.AST) -> bool:
    if isinstance(value, ast.Dict) and not value.keys:
        return True
    if isinstance(value, ast.Call) and not value.args and not value.keywords:
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name in _EMPTY_FACTORIES
    # ``defaultdict(list)`` and friends: factory arg, still empty.
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name == "defaultdict"
    return False


def _has_len_bound(scope: ast.AST, container: str, owner: Optional[str]) -> bool:
    """A ``len(<container>)`` comparison anywhere in ``scope``."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Compare):
            continue
        for expr in [node.left, *node.comparators]:
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id == "len"
                and expr.args
            ):
                arg = expr.args[0]
                if owner is None:
                    if isinstance(arg, ast.Name) and arg.id == container:
                        return True
                elif (
                    isinstance(arg, ast.Attribute)
                    and arg.attr == container
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == owner
                ):
                    return True
    return False


def _growth_key_is_tainted(mutation_node: ast.AST, key: Optional[ast.AST]) -> bool:
    if key is None or isinstance(key, ast.Constant):
        return False
    func = enclosing_function(mutation_node)
    if func is None:
        return False
    return bool(names_in(key) & tainted_locals(func))


@register
class BoundedCacheRule(Rule):
    id = "bounded-cache"
    description = (
        "long-lived dicts grown with request-derived keys must have an "
        "eviction branch or size bound (the PR 4/5 unbounded-cache class)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        yield from self._check_globals(module)
        yield from self._check_instances(module)

    # ------------------------------------------------------------------
    def _check_globals(self, module: ModuleInfo) -> Iterable[Finding]:
        tree = module.tree
        containers: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign) and _is_empty_dict_init(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        containers.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_empty_dict_init(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    containers.add(node.target.id)
        if not containers:
            return
        grows: Dict[str, List] = {}
        shrinks: Set[str] = set()
        for mutation in iter_global_mutations(tree, containers):
            in_function = enclosing_function(mutation.node) is not None
            if mutation.kind in ("subscript", "setdefault") and in_function:
                if _growth_key_is_tainted(mutation.node, mutation.key):
                    grows.setdefault(mutation.attr, []).append(mutation.node)
            if mutation.kind in SHRINKING_METHODS or mutation.kind == "del":
                shrinks.add(mutation.attr)
        for name, sites in sorted(grows.items()):
            if name in shrinks or _has_len_bound(tree, name, owner=None):
                continue
            yield module.finding(
                self.id,
                sites[0],
                f"module dict {name} grows with request-derived keys but has "
                "no eviction or size bound anywhere in this module",
            )

    # ------------------------------------------------------------------
    def _check_instances(self, module: ModuleInfo) -> Iterable[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            init = next(
                (
                    item
                    for item in cls.body
                    if isinstance(item, ast.FunctionDef) and item.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            containers: Set[str] = set()
            for node in ast.walk(init):
                if isinstance(node, ast.Assign) and _is_empty_dict_init(node.value):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            containers.add(target.attr)
            if not containers:
                continue
            grows: Dict[str, List] = {}
            shrinks: Set[str] = set()
            for mutation in iter_attr_mutations(cls):
                if mutation.attr not in containers:
                    continue
                func = enclosing_function(mutation.node)
                outside_init = func is not None and func.name != "__init__"
                if mutation.kind in ("subscript", "setdefault") and outside_init:
                    if _growth_key_is_tainted(mutation.node, mutation.key):
                        grows.setdefault(mutation.attr, []).append(mutation.node)
                if mutation.kind in SHRINKING_METHODS or mutation.kind == "del":
                    shrinks.add(mutation.attr)
            for name, sites in sorted(grows.items()):
                if name in shrinks or _has_len_bound(cls, name, owner="self"):
                    continue
                yield module.finding(
                    self.id,
                    sites[0],
                    f"{cls.name}.{name} grows with request-derived keys but "
                    "has no eviction or size bound anywhere in this class",
                )
