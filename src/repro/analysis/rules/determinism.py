"""``determinism`` and ``spawn-safety`` — protect the byte-identical
oracle and the process-pool seam.

**determinism.** ReverseCloak's whole contract — multi-level reversal,
cross-backend byte-identical envelopes, the golden-vector tests — rests
on ``core/``, ``keys/`` and ``roadnet/`` being pure functions of their
inputs. A wall-clock read or an unseeded RNG anywhere in those packages
silently breaks the oracle in ways only a flaky golden test would ever
catch. The rule forbids calls to wall clocks (``time.time``,
``time.monotonic``, ``perf_counter`` ...), unseeded randomness
(``random.*`` module functions, argument-less ``random.Random()`` /
``numpy.random.default_rng()``, the legacy ``numpy.random.*`` global
RNG, ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``) and
``id()``-keyed ordering (``sorted(..., key=id)`` or ``d[id(x)]`` — CPython
address order, different every run) inside those packages. Seeded
constructions (``default_rng(seed)``, ``random.Random(seed)``) are fine:
determinism, not randomness, is the invariant. Legitimate exceptions
(deadline checkpoints, benchmark instrumentation) belong in
:data:`ALLOWED_CALLS` or behind an inline suppression with a
justification.

**spawn-safety.** The fork-hides-it, spawn-breaks-it class CI guards
dynamically: a lambda or a locally-defined closure assigned to an
attribute of an object that later ships to a ``ProcessPoolBackend``
worker pickles fine under ``fork`` (nothing is pickled) and explodes
under ``spawn``. The rule flags attribute assignments whose value is a
``lambda`` or a function defined inside the enclosing function, anywhere
in the tree — serving objects travel too widely to scope this by path.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register
from ..visitor import ImportTable, enclosing_function

#: Path components whose files the determinism rule governs.
DETERMINISTIC_PACKAGES = frozenset({"core", "keys", "roadnet"})

#: Dotted call targets that read ambient nondeterminism.
FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: Explicit allowlist: dotted targets exempted by design (none today —
#: deadline checkpoints live in ``lbs/faults.py``, outside the governed
#: packages, and benchmarks live outside ``src/``). Entries added here
#: must say why.
ALLOWED_CALLS: Set[str] = set()

#: Legacy numpy global-RNG entry points (unseeded process-wide state).
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "numpy.random.random",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.seed",
    }
)


def _governed(module: ModuleInfo) -> bool:
    return bool(set(module.rel_path.split("/")) & DETERMINISTIC_PACKAGES)


@register
class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "no wall clocks, unseeded randomness, or id()-keyed ordering inside "
        "core/, keys/, roadnet/ (the byte-identical oracle packages)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if not _governed(module):
            return
        imports = ImportTable(module.tree)
        imported_roots = set(imports.aliases)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                finding = self._check_call(module, imports, imported_roots, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Subscript) and not isinstance(
                node.ctx, ast.Load
            ):
                # `d[id(x)] = ...` — id-keyed storage orders by address.
                if _is_id_call(node.slice):
                    yield module.finding(
                        self.id,
                        node,
                        "id()-keyed storage orders by CPython address — "
                        "different every run; key by a stable identity",
                    )

    def _check_call(
        self,
        module: ModuleInfo,
        imports: ImportTable,
        imported_roots: Set[str],
        node: ast.Call,
    ) -> Optional[Finding]:
        resolved = imports.resolve(node.func)
        if resolved is not None and "." in resolved:
            # Only trust resolutions rooted in an actual import — a local
            # object that happens to be named `time` is not the module.
            base = node.func
            while isinstance(base, ast.Attribute):
                base = base.value
            resolved_rooted = (
                resolved
                if isinstance(base, ast.Name) and base.id in imported_roots
                else None
            )
            if resolved_rooted is not None:
                if resolved_rooted in ALLOWED_CALLS:
                    return None
                if resolved_rooted in FORBIDDEN_CALLS:
                    return module.finding(
                        self.id,
                        node,
                        f"{resolved_rooted}() inside a byte-identical oracle "
                        "package: results must be pure functions of their "
                        "inputs",
                    )
                if resolved_rooted in _NUMPY_GLOBAL_RNG:
                    return module.finding(
                        self.id,
                        node,
                        f"{resolved_rooted}() uses the unseeded process-wide "
                        "RNG; build a seeded Generator instead",
                    )
                if (
                    resolved_rooted.startswith("random.")
                    and resolved_rooted != "random.Random"
                ):
                    return module.finding(
                        self.id,
                        node,
                        f"{resolved_rooted}() draws from the unseeded global "
                        "RNG; thread a seeded random.Random through instead",
                    )
                if resolved_rooted in (
                    "random.Random",
                    "numpy.random.default_rng",
                ) and not (node.args or node.keywords):
                    return module.finding(
                        self.id,
                        node,
                        f"{resolved_rooted}() without a seed is entropy-"
                        "seeded; pass an explicit seed",
                    )
        # id()-keyed ordering: sorted(xs, key=id) / key=lambda x: id(x).
        func_name = getattr(node.func, "id", None)
        if func_name in ("sorted", "min", "max"):
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_id_key(keyword.value):
                    return module.finding(
                        self.id,
                        node,
                        f"{func_name}(..., key=id) orders by CPython address "
                        "— different every run; key by a stable identity",
                    )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
        ):
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_id_key(keyword.value):
                    return module.finding(
                        self.id,
                        node,
                        "sort(key=id) orders by CPython address — different "
                        "every run; key by a stable identity",
                    )
        return None


def _is_id_key(value: ast.AST) -> bool:
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        return _is_id_call(value.body)
    return False


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@register
class SpawnSafetyRule(Rule):
    id = "spawn-safety"
    description = (
        "no lambdas or local closures assigned to object attributes — "
        "pickles under fork, explodes under spawn (ProcessPoolBackend seam)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            attr_targets = [
                target
                for target in node.targets
                if isinstance(target, ast.Attribute)
            ]
            if not attr_targets:
                continue
            if isinstance(node.value, ast.Lambda):
                target = attr_targets[0]
                yield module.finding(
                    self.id,
                    node,
                    f"lambda assigned to attribute .{target.attr}: "
                    "unpicklable — fork hides it, spawn breaks it; use a "
                    "module-level function",
                )
            elif isinstance(node.value, ast.Name):
                func = enclosing_function(node)
                if func is None:
                    continue
                local_defs = {
                    child.name
                    for child in ast.walk(func)
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not func
                }
                if node.value.id in local_defs:
                    target = attr_targets[0]
                    yield module.finding(
                        self.id,
                        node,
                        f"locally-defined function {node.value.id!r} assigned "
                        f"to attribute .{target.attr}: unpicklable — fork "
                        "hides it, spawn breaks it; define it at module level",
                    )
