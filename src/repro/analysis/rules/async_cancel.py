"""``async-cancellation`` — cancellation must propagate through coroutines.

The front-end's hardening (PR 9) is built on asyncio cancellation:
``wait_for`` bounds idle reads and per-connection drains by cancelling
them, and the drain ladder's escalation cancels serving tasks that blew
the drain deadline. That machinery only works if
``asyncio.CancelledError`` *propagates* — an ``except`` handler inside an
``async def`` that catches it and returns normally makes the task report
"done", so ``close()`` believes a wedged batch finished and the
escalation ladder silently loses a rung.

The rule flags, inside async functions, any handler that can catch
``CancelledError`` — a bare ``except:``, ``except BaseException:``, an
explicit ``except asyncio.CancelledError:`` (alias-aware), or a tuple
naming either — whose body contains no re-raise. ``except Exception`` is
*exempt* on its own: since Python 3.8 ``CancelledError`` derives from
``BaseException`` precisely so broad ``Exception`` handlers cannot
swallow it. Synchronous functions are not governed — cancellation is
delivered at ``await`` points, which only async frames have.

The sanctioned idiom after cancelling a task you own is a conditional
re-raise (re-raise when *you* are the one being cancelled, swallow when
it is only the child's cancellation completing); any ``raise`` — bare or
of the bound exception name — in the handler body is compliant:

    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        if not task.cancelled():
            raise
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register
from ..visitor import ImportTable, enclosing_function

#: Dotted names that are (or alias) the cancellation exception.
_CANCELLED_PATHS = frozenset(
    {
        "asyncio.CancelledError",
        "asyncio.exceptions.CancelledError",
        "concurrent.futures.CancelledError",  # pre-3.8 alias, same class
    }
)


def _catches_cancellation(
    handler_type: Optional[ast.AST], imports: ImportTable
) -> Optional[str]:
    """What makes this handler able to catch ``CancelledError`` — a
    human-readable label, or ``None`` when it cannot (``except
    Exception`` and narrower)."""
    if handler_type is None:
        return "a bare except"
    if isinstance(handler_type, ast.Tuple):
        for element in handler_type.elts:
            label = _catches_cancellation(element, imports)
            if label is not None:
                return label
        return None
    if isinstance(handler_type, ast.Name) and handler_type.id == "BaseException":
        return "except BaseException"
    resolved = imports.resolve(handler_type)
    if resolved in _CANCELLED_PATHS:
        return f"except {resolved}"
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises what it caught: a bare
    ``raise``, or ``raise <name>`` of the bound exception. Nested
    function definitions are opaque — a ``raise`` inside one does not
    unwind this handler."""

    def scan(nodes) -> bool:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    return True
                if (
                    handler.name is not None
                    and isinstance(node.exc, ast.Name)
                    and node.exc.id == handler.name
                ):
                    return True
            if scan(ast.iter_child_nodes(node)):
                return True
        return False

    return scan(handler.body)


@register
class AsyncCancellationRule(Rule):
    id = "async-cancellation"
    description = (
        "handlers inside async functions must not swallow "
        "asyncio.CancelledError — bare except / except BaseException / "
        "explicit CancelledError handlers need a re-raise"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        imports = ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            func = enclosing_function(node)
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            label = _catches_cancellation(node.type, imports)
            if label is None or _reraises(node):
                continue
            yield module.finding(
                self.id,
                node,
                f"{label} inside async {func.name}() swallows "
                "asyncio.CancelledError: the task reports done and "
                "cancellation (wait_for bounds, drain escalation) "
                "silently stops working; re-raise it",
            )
