"""``lock-discipline`` — mutations of lock-guarded state must hold the lock.

The PR 2 bug class: ``TrustedAnonymizer`` counted requests with a bare
``self._requests_served += 1`` while other paths mutated the same counter
under ``with self._lock`` — concurrent batches silently dropped
increments. The invariant this rule encodes: **within a class that owns a
``threading.Lock``/``RLock`` attribute, an attribute that is mutated under
``with self.<lock>`` anywhere must be mutated under that lock
everywhere** (``__init__`` excepted — construction happens-before
sharing). The same discipline applies at module level to globals guarded
by module-level locks (the profile/PRF/pre-assignment cache pattern).

The check is syntactic: a mutation inside a helper that is only ever
called with the lock held (e.g. ``ProcessPoolBackend._respawn`` under the
dispatch lock) has no enclosing ``with`` and is *not* tracked as guarded —
such attributes simply never enter the guarded set, so the convention of
"lock held by caller" helpers stays expressible. What the rule refuses is
the half-disciplined state where the same attribute is mutated both ways.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register
from ..visitor import (
    ImportTable,
    held_attr_locks,
    held_global_locks,
    iter_attr_mutations,
    iter_global_mutations,
)

#: Callables whose result is a lock (resolved dotted names).
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}


def _lock_attrs_of_class(cls: ast.ClassDef, imports: ImportTable) -> Set[str]:
    """Attributes of ``cls`` assigned a lock object in any method."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        resolved = imports.resolve(node.value.func)
        if resolved not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _module_locks(tree: ast.Module, imports: ImportTable) -> Set[str]:
    """Module-level names assigned a lock object at module scope."""
    locks: Set[str] = set()
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and imports.resolve(node.value.func) in _LOCK_FACTORIES
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


def _method_of(cls: ast.ClassDef, node: ast.AST) -> str:
    cursor = getattr(node, "parent", None)
    while cursor is not None and cursor is not cls:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parent = getattr(cursor, "parent", None)
            if parent is cls:
                return cursor.name
        cursor = getattr(cursor, "parent", None)
    return ""


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "attributes mutated under `with self.<lock>` anywhere must hold "
        "the lock at every mutation site (the PR 2 racy-counter class)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        imports = ImportTable(module.tree)
        yield from self._check_classes(module, imports)
        yield from self._check_module_globals(module, imports)

    # ------------------------------------------------------------------
    def _check_classes(
        self, module: ModuleInfo, imports: ImportTable
    ) -> Iterable[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs = _lock_attrs_of_class(cls, imports)
            if not lock_attrs:
                continue
            # First pass: which (attr -> locks) pairings exist under a
            # syntactic `with self.<lock>` somewhere in the class.
            guarded_by: Dict[str, Set[str]] = {}
            mutations = list(iter_attr_mutations(cls))
            for mutation in mutations:
                held = held_attr_locks(mutation.node) & lock_attrs
                if held:
                    guarded_by.setdefault(mutation.attr, set()).update(held)
            # Second pass: every mutation of a guarded attribute must hold
            # (one of) its guarding locks.
            for mutation in mutations:
                locks = guarded_by.get(mutation.attr)
                if not locks or mutation.attr in lock_attrs:
                    continue
                if _method_of(cls, mutation.node) == "__init__":
                    continue  # construction happens-before sharing
                if held_attr_locks(mutation.node) & locks:
                    continue
                lock_list = ", ".join(f"self.{name}" for name in sorted(locks))
                yield module.finding(
                    self.id,
                    mutation.node,
                    f"{cls.name}.{mutation.attr} is mutated elsewhere under "
                    f"`with {lock_list}` but mutated here without the lock",
                )

    # ------------------------------------------------------------------
    def _check_module_globals(
        self, module: ModuleInfo, imports: ImportTable
    ) -> Iterable[Finding]:
        locks = _module_locks(module.tree, imports)
        if not locks:
            return
        container_names = {
            target.id
            for node in module.tree.body
            if isinstance(node, ast.Assign)
            for target in node.targets
            if isinstance(target, ast.Name)
        } - locks
        if not container_names:
            return
        guarded_by: Dict[str, Set[str]] = {}
        mutations = list(iter_global_mutations(module.tree, container_names))
        # Only mutations inside functions count: module top level runs
        # single-threaded at import time.
        mutations = [
            m
            for m in mutations
            if any(
                isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef))
                for p in _ancestors(m.node)
            )
        ]
        for mutation in mutations:
            held = held_global_locks(mutation.node) & locks
            if held:
                guarded_by.setdefault(mutation.attr, set()).update(held)
        for mutation in mutations:
            guard = guarded_by.get(mutation.attr)
            if not guard:
                continue
            if held_global_locks(mutation.node) & guard:
                continue
            lock_list = ", ".join(sorted(guard))
            yield module.finding(
                self.id,
                mutation.node,
                f"module global {mutation.attr} is mutated elsewhere under "
                f"`with {lock_list}` but mutated here without the lock",
            )


def _ancestors(node: ast.AST) -> List[ast.AST]:
    out: List[ast.AST] = []
    cursor = getattr(node, "parent", None)
    while cursor is not None:
        out.append(cursor)
        cursor = getattr(cursor, "parent", None)
    return out
