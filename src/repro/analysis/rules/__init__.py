"""Built-in ``reprolint`` rules — importing this package registers them.

Each module encodes one historical bug class of this repository:

* :mod:`.locks` — the PR 2 racy-counter class (``lock-discipline``);
* :mod:`.caches` — the PR 4/5 unbounded attacker-growable cache class
  (``bounded-cache``);
* :mod:`.wire_docs` — wire-document round-trip completeness and the PR 6
  omitted-when-None byte-compat discipline (``wire-roundtrip``);
* :mod:`.determinism` — wall clocks / unseeded randomness inside the
  byte-identical oracle core (``determinism``) and the fork-hides-it,
  spawn-breaks-it picklability class (``spawn-safety``);
* :mod:`.error_codes` — the single-declaration, most-derived-first wire
  error-code registry (``error-registry``);
* :mod:`.async_cancel` — the PR 9 swallowed-``CancelledError`` class in
  async serving code (``async-cancellation``);
* :mod:`.concurrency` — the interprocedural event-loop pack over the
  PR 10 call graph: ``loop-blocking-call``, ``task-leak``,
  ``await-under-lock``, ``threadsafe-loop-mutation``;
* :mod:`.resources` — alias-aware resource-leak checking, including the
  PR 9 FD-inherited-by-child class (``resource-lifecycle``).
"""

from . import (  # noqa: F401
    async_cancel,
    caches,
    concurrency,
    determinism,
    error_codes,
    locks,
    resources,
    wire_docs,
)

__all__ = [
    "async_cancel",
    "caches",
    "concurrency",
    "determinism",
    "error_codes",
    "locks",
    "resources",
    "wire_docs",
]
