"""``wire-roundtrip`` — wire dataclasses must serialize completely and
keep byte-identical compatibility.

The serving protocol's compatibility discipline, enforced by hand since
PR 3 and encoded here: for every ``*Doc`` dataclass (the versioned wire
documents of :mod:`repro.lbs.wire`),

* **completeness** — every dataclass field must appear in both
  ``to_dict`` and ``from_dict``; a field added to the dataclass but not
  to one side of the round trip silently drops data on the wire (the
  exact shape a hand review caught for ``deadline_ms`` in PR 6);
* **omitted-when-None** — a field with a ``None`` default must not be
  written into the outgoing document unconditionally: new optional
  fields must be omitted when unset, so documents that do not use the
  feature stay byte-identical to the previous protocol revision (the
  PR 6 ``deadline_ms`` discipline: ``if self.x is not None:
  document["x"] = self.x``).

"Appears in ``to_dict``" means the method reads ``self.<field>`` or names
the ``"<field>"`` key; "appears in ``from_dict``" means the method names
the ``"<field>"`` key or passes a ``<field>=`` keyword (nested layouts
like ``OutcomeDoc``'s ``error`` sub-document satisfy this through the
constructor keywords).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register

_DATACLASS_DECORATORS = {"dataclass"}


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", "")
        )
        if name in _DATACLASS_DECORATORS:
            return True
    return False


def _doc_fields(cls: ast.ClassDef) -> Dict[str, Optional[ast.AST]]:
    """``field -> default expression`` of a dataclass body (``ClassVar``
    annotations excluded)."""
    fields: Dict[str, Optional[ast.AST]] = {}
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(
            node.target, ast.Name
        ):
            continue
        annotation = ast.dump(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields[node.target.id] = node.value
    return fields


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _self_reads(func: ast.FunctionDef) -> Set[str]:
    return {
        node.attr
        for node in ast.walk(func)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    }


def _string_constants(func: ast.FunctionDef) -> Set[str]:
    return {
        node.value
        for node in ast.walk(func)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _call_keywords(func: ast.FunctionDef) -> Set[str]:
    return {
        keyword.arg
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        for keyword in node.keywords
        if keyword.arg is not None
    }


def _guarded_by_field(node: ast.AST, field: str) -> bool:
    """An enclosing ``if``/ternary tests ``self.<field>``."""
    cursor = getattr(node, "parent", None)
    while cursor is not None:
        if isinstance(cursor, (ast.If, ast.IfExp)):
            for sub in ast.walk(cursor.test):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == field
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    return True
        cursor = getattr(cursor, "parent", None)
    return False


def _unconditional_emissions(
    func: ast.FunctionDef, field: str
) -> List[ast.AST]:
    """Places ``to_dict`` writes the ``"<field>"`` key without testing
    ``self.<field>`` first: dict-literal keys and constant-key subscript
    assignments."""
    sites: List[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and key.value == field
                    and not _guarded_by_field(node, field)
                ):
                    sites.append(key)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and target.slice.value == field
                    and not _guarded_by_field(node, field)
                ):
                    sites.append(node)
    return sites


@register
class WireRoundTripRule(Rule):
    id = "wire-roundtrip"
    description = (
        "*Doc dataclass fields must round-trip through to_dict/from_dict, "
        "and None-defaulted fields must be omitted when unset (byte-compat)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not cls.name.endswith("Doc") or not _is_dataclass(cls):
                continue
            fields = _doc_fields(cls)
            if not fields:
                continue
            to_dict = _method(cls, "to_dict")
            from_dict = _method(cls, "from_dict")
            if to_dict is None or from_dict is None:
                missing = "to_dict" if to_dict is None else "from_dict"
                yield module.finding(
                    self.id,
                    cls,
                    f"wire dataclass {cls.name} has no {missing}: every *Doc "
                    "must round-trip through to_dict/from_dict",
                )
                continue
            to_names = _self_reads(to_dict) | _string_constants(to_dict)
            from_names = _string_constants(from_dict) | _call_keywords(from_dict)
            for field, default in fields.items():
                if field not in to_names:
                    yield module.finding(
                        self.id,
                        to_dict,
                        f"{cls.name}.{field} never appears in to_dict: the "
                        "field is silently dropped on serialization",
                    )
                if field not in from_names:
                    yield module.finding(
                        self.id,
                        from_dict,
                        f"{cls.name}.{field} never appears in from_dict: the "
                        "field is silently dropped on parsing",
                    )
                if isinstance(default, ast.Constant) and default.value is None:
                    for site in _unconditional_emissions(to_dict, field):
                        yield module.finding(
                            self.id,
                            site,
                            f"{cls.name}.{field} defaults to None but to_dict "
                            "emits it unconditionally: optional fields must "
                            "be omitted when unset so old documents stay "
                            "byte-identical",
                        )
