"""The asyncio front-end concurrency rules (interprocedural pack, PR 10).

Four rules over the :mod:`~repro.analysis.callgraph` core, each encoding
an invariant the socket front-end (PRs 8–9) is built on:

* ``loop-blocking-call`` — an ``async def`` must not *transitively* reach
  a blocking call (``time.sleep``, pipe/socket ``recv``, ``subprocess``
  waits) without an executor hop. One blocked loop iteration stalls every
  connection the front-end multiplexes: the idle clocks keep running,
  deadlines expire in the queue, and the p99 the open-loop bench measures
  explodes. The blocking fact propagates through *sync* helpers only —
  awaiting an async callee is not blocking (the callee gets its own
  finding at its own call site).
* ``task-leak`` — ``asyncio.create_task``/``ensure_future`` results must
  be kept (assigned, stored, passed on) or given a done-callback. The
  event loop holds only a *weak* reference to running tasks: a dropped
  handle can be garbage-collected mid-flight, and — the front-end's
  actual discipline (``_spawn`` + ``_tasks``) — an untracked task is
  invisible to the drain ladder, so ``close()`` cannot wait for it.
* ``await-under-lock`` — no ``await`` while holding a *threading* lock
  acquired via ``with``. The await suspends the coroutine with the lock
  held; any other coroutine (or executor thread) touching the lock then
  blocks the whole loop — the deadlock needs only one contender. Lock
  attributes are inferred class-wide (``self._lock = threading.Lock()``
  anywhere in the class), module-level locks by the same rule as
  lock-discipline. ``async with`` on an asyncio lock is the sanctioned
  idiom and is not governed.
* ``threadsafe-loop-mutation`` — state owned by the event-loop thread
  (attributes mutated in ``async def`` methods with no lock anywhere)
  must not be mutated from code that runs on an executor (functions
  passed to ``run_in_executor``/``submit``/``to_thread``/
  ``threading.Thread``, plus everything they call). The loop-thread-only
  discipline is what lets the front-end run lock-free; the fix is
  ``loop.call_soon_threadsafe(...)`` — which passes this rule naturally,
  because the scheduled callback is a *reference*, not an off-loop call.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..callgraph import CallGraph, CallSite, Fact, module_dotted_name
from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register
from ..visitor import ImportTable, held_attr_locks, iter_attr_mutations
from .locks import _lock_attrs_of_class, _module_locks

# ----------------------------------------------------------------------
# loop-blocking-call
# ----------------------------------------------------------------------
#: Dotted callables that block the calling thread outright.
_BLOCKING_EXTERNAL = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
        "select.select",
        "os.waitpid",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Method names that block on sockets/pipes regardless of receiver type —
#: conservative dynamic-dispatch seeds (``conn.recv()``, ``sock.accept()``).
_BLOCKING_METHODS = frozenset(
    {"recv", "recv_bytes", "recv_into", "accept", "sendall"}
)


def _blocking_reason(site: CallSite) -> Optional[str]:
    if site.awaited:
        return None  # ``await x.recv()`` yields an awaitable, not a block
    if site.external in _BLOCKING_EXTERNAL:
        return f"{site.external} (line {site.line})"
    if (
        site.callee is None
        and site.external is None
        and site.method in _BLOCKING_METHODS
    ):
        return f".{site.method}() (line {site.line})"
    return None


@register
class LoopBlockingCallRule(Rule):
    id = "loop-blocking-call"
    description = (
        "async functions must not transitively reach blocking calls "
        "(time.sleep, pipe/socket recv, subprocess waits) without an "
        "executor hop — one blocked iteration stalls every connection"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        graph: CallGraph = project.call_graph()
        blocking = self._blocking_facts(graph)
        for qname, info in graph.functions.items():
            if info.module is not module or not info.is_async:
                continue
            for site in graph.sites.get(qname, ()):
                reason = _blocking_reason(site)
                if reason is not None:
                    yield module.finding(
                        self.id,
                        site.node,
                        f"async {info.name}() calls blocking {reason} on "
                        "the event-loop thread; hop through "
                        "loop.run_in_executor / asyncio.to_thread or use "
                        "the async equivalent",
                    )
                    continue
                callee = site.callee
                if callee is None:
                    continue
                target = graph.functions.get(callee)
                fact = blocking.get(callee)
                if target is None or target.is_async or fact is None:
                    continue
                chain = graph.chain(fact, blocking)
                yield module.finding(
                    self.id,
                    site.node,
                    f"async {info.name}() reaches a blocking call via "
                    f"{site.describe()} -> {chain}; hop through "
                    "loop.run_in_executor / asyncio.to_thread",
                )

    @staticmethod
    def _blocking_facts(graph: CallGraph) -> Dict[str, Fact]:
        seeds: Dict[str, str] = {}
        for qname, sites in graph.sites.items():
            info = graph.functions[qname]
            if info.is_async:
                continue  # async defs report themselves; see `through`
            for site in sites:
                reason = _blocking_reason(site)
                if reason is not None:
                    seeds[qname] = f"blocking {reason} in {info.name}()"
                    break
        # Conduct blockingness through sync callees only: an async callee
        # is awaited, which parks the caller instead of blocking it.
        return graph.propagate(
            seeds, through=lambda info: not info.is_async
        )


# ----------------------------------------------------------------------
# task-leak
# ----------------------------------------------------------------------
_TASK_FACTORIES_EXTERNAL = frozenset(
    {"asyncio.create_task", "asyncio.ensure_future"}
)
_TASK_FACTORY_METHODS = frozenset({"create_task", "ensure_future"})


def _is_task_factory(site: CallSite) -> bool:
    if site.external in _TASK_FACTORIES_EXTERNAL:
        return True
    return (
        site.callee is None
        and site.external is None
        and site.method in _TASK_FACTORY_METHODS
    )


@register
class TaskLeakRule(Rule):
    id = "task-leak"
    description = (
        "asyncio.create_task/ensure_future results must be kept or given "
        "a done-callback — the loop holds tasks weakly, and an untracked "
        "task is invisible to the drain ladder"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        graph: CallGraph = project.call_graph()
        for qname, sites in graph.sites.items():
            info = graph.functions[qname]
            if info.module is not module:
                continue
            for site in sites:
                if not _is_task_factory(site):
                    continue
                parent = getattr(site.node, "parent", None)
                dropped = isinstance(parent, ast.Expr)
                if (
                    isinstance(parent, ast.Assign)
                    and len(parent.targets) == 1
                    and isinstance(parent.targets[0], ast.Name)
                    and parent.targets[0].id == "_"
                ):
                    dropped = True
                if not dropped:
                    continue
                yield module.finding(
                    self.id,
                    site.node,
                    f"{site.describe()} result is dropped: the event loop "
                    "keeps only a weak reference, so the task can be "
                    "garbage-collected mid-flight and no shutdown path can "
                    "await it; keep the handle (a set + done-callback "
                    "discard) or attach a done-callback",
                )


# ----------------------------------------------------------------------
# await-under-lock
# ----------------------------------------------------------------------
def _with_locks_inside_function(node: ast.AST) -> List[Tuple[ast.With, ast.AST]]:
    """``(with-statement, context expr)`` pairs of the sync ``with``
    statements between ``node`` and its enclosing function boundary."""
    held: List[Tuple[ast.With, ast.AST]] = []
    cursor = getattr(node, "parent", None)
    while cursor is not None and not isinstance(
        cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    ):
        if isinstance(cursor, ast.With):
            for item in cursor.items:
                held.append((cursor, item.context_expr))
        cursor = getattr(cursor, "parent", None)
    return held


@register
class AwaitUnderLockRule(Rule):
    id = "await-under-lock"
    description = (
        "no await while holding a threading lock acquired via `with` — "
        "the suspended coroutine keeps the lock and one contender "
        "deadlocks the loop"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        imports = ImportTable(module.tree)
        lock_attrs_by_class: Dict[ast.ClassDef, Set[str]] = {}
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                attrs = _lock_attrs_of_class(cls, imports)
                if attrs:
                    lock_attrs_by_class[cls] = attrs
        module_locks = _module_locks(module.tree, imports)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Await):
                continue
            for _stmt, expr in _with_locks_inside_function(node):
                label = self._lock_label(
                    node, expr, lock_attrs_by_class, module_locks
                )
                if label is not None:
                    yield module.finding(
                        self.id,
                        node,
                        f"await while holding threading lock {label} "
                        "(acquired via `with`): the coroutine suspends "
                        "with the lock held and any other acquirer blocks "
                        "the event loop; release before awaiting, or use "
                        "asyncio.Lock with `async with`",
                    )
                    break

    @staticmethod
    def _lock_label(
        node: ast.AST,
        expr: ast.AST,
        lock_attrs_by_class: Dict[ast.ClassDef, Set[str]],
        module_locks: Set[str],
    ) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in module_locks:
            return expr.id
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            cursor = getattr(node, "parent", None)
            while cursor is not None:
                if (
                    isinstance(cursor, ast.ClassDef)
                    and expr.attr in lock_attrs_by_class.get(cursor, ())
                ):
                    return f"self.{expr.attr}"
                cursor = getattr(cursor, "parent", None)
        return None


# ----------------------------------------------------------------------
# threadsafe-loop-mutation
# ----------------------------------------------------------------------
#: Call shapes that ship a function reference onto an executor/thread:
#: any ``self.<m>`` reference in their arguments runs off-loop.
_OFFLOOP_DISPATCH_METHODS = frozenset(
    {"run_in_executor", "submit", "to_thread"}
)
_OFFLOOP_DISPATCH_EXTERNAL = frozenset(
    {"asyncio.to_thread", "threading.Thread", "concurrent.futures.Thread"}
)
_THREAD_FACTORY_NAMES = frozenset({"Thread", "Process"})


def _self_method_refs(call: ast.Call) -> Iterable[str]:
    """Names of ``self.<m>`` references among a call's arguments."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                yield node.attr


def _is_offloop_dispatch(site: CallSite) -> bool:
    if site.external in _OFFLOOP_DISPATCH_EXTERNAL:
        return True
    if site.external is not None and site.external.split(".")[-1] in (
        _THREAD_FACTORY_NAMES
    ):
        return True
    if site.callee is None and site.method in _OFFLOOP_DISPATCH_METHODS:
        return True
    if site.callee is None and site.method in _THREAD_FACTORY_NAMES:
        return True
    return False


@register
class ThreadsafeLoopMutationRule(Rule):
    id = "threadsafe-loop-mutation"
    description = (
        "event-loop-owned attributes (mutated lock-free in async methods) "
        "must not be mutated from executor/thread callbacks — schedule "
        "the mutation with loop.call_soon_threadsafe"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        graph: CallGraph = project.call_graph()
        mod_name, _package = module_dotted_name(module)
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(module, graph, mod_name, cls)

    def _check_class(
        self,
        module: ModuleInfo,
        graph: CallGraph,
        mod_name: str,
        cls: ast.ClassDef,
    ) -> Iterable[Finding]:
        mutations = list(iter_attr_mutations(cls))
        loop_owned: Set[str] = set()
        lock_guarded: Set[str] = set()
        for mutation in mutations:
            if held_attr_locks(mutation.node):
                lock_guarded.add(mutation.attr)
                continue
            owner = graph.function_at(mutation.node)
            if owner is not None and owner.is_async and owner.class_name == cls.name:
                loop_owned.add(mutation.attr)
        loop_owned -= lock_guarded
        if not loop_owned:
            return
        offloop = self._offloop_methods(graph, mod_name, cls)
        if not offloop:
            return
        for mutation in mutations:
            if mutation.attr not in loop_owned:
                continue
            owner = graph.function_at(mutation.node)
            if owner is None or owner.qname not in offloop:
                continue
            yield module.finding(
                self.id,
                mutation.node,
                f"{cls.name}.{mutation.attr} is event-loop state (mutated "
                f"lock-free in async methods) but {owner.name}() runs on "
                f"an executor ({offloop[owner.qname]}); mutate it via "
                "loop.call_soon_threadsafe, or guard both sides with a lock",
            )

    @staticmethod
    def _offloop_methods(
        graph: CallGraph, mod_name: str, cls: ast.ClassDef
    ) -> Dict[str, str]:
        """Methods of ``cls`` that run off the event-loop thread, mapped
        to why: referenced in an executor/thread dispatch call, or called
        (transitively, resolved edges) by such a method."""
        seeds: Dict[str, str] = {}
        for qname, sites in graph.sites.items():
            for site in sites:
                if not _is_offloop_dispatch(site):
                    continue
                for method_name in _self_method_refs(site.node):
                    target = f"{mod_name}:{cls.name}.{method_name}"
                    if target in graph.functions:
                        seeds[target] = (
                            f"shipped to {site.describe()} at "
                            f"line {site.line}"
                        )
        if not seeds:
            return {}
        # Forward-propagate along call edges: whatever an off-loop method
        # calls (resolved, same class) also runs off-loop.
        out: Dict[str, str] = dict(seeds)
        frontier = list(seeds)
        while frontier:
            next_frontier: List[str] = []
            for qname in frontier:
                for site in graph.sites.get(qname, ()):
                    callee = site.callee
                    if (
                        callee is None
                        or callee in out
                        or not callee.startswith(f"{mod_name}:{cls.name}.")
                    ):
                        continue
                    info = graph.functions.get(callee)
                    if info is None or info.is_async:
                        continue
                    caller_name = qname.split(".")[-1]
                    out[callee] = f"called from off-loop {caller_name}()"
                    next_frontier.append(callee)
            frontier = next_frontier
        return out
