"""``resource-lifecycle`` — alias-aware leak checking for OS resources.

The PR 9 postmortem bug class: ``_spawn_worker`` created a pipe, handed
``child_end`` to a forked ``Process``, and closed it only on the success
path — every spawn failure left a duplicate FD open in the parent, and
every *other* worker forked afterwards inherited it, so EOF never
arrived and the drain ladder hung. The property is not syntactic: the
resource flows through aliases, escapes into handles, and is closed (or
not) statements later. This rule tracks it.

Per function frame (nested defs and lambdas are their own frames):

* **Creation** — a ``Name`` (or tuple-of-names) assigned from a resource
  constructor: sockets, pipes, ``open``, ``Popen``, executors, worker
  ``Process`` objects. Pair constructors (``Pipe()``, ``socketpair()``)
  track every element; ``accept()`` tracks the connection, not the peer
  address. Functions that *return* a tracked resource become internal
  constructors themselves (a bounded fixpoint over the call graph), so
  ``conn = _dial(addr)`` is tracked like a raw ``create_connection``.
* **Aliases** — ``b = a`` extends the tracked name set.
* **Escapes** — returning/yielding the resource, storing it on an
  attribute/subscript or into a container literal, or passing it to a
  call hands ownership elsewhere; the function is no longer responsible
  and the rule stays silent. One deliberate exception: passing a
  resource to a ``Process`` constructor does **not** transfer ownership
  — the child gets a *duplicate* of the FD and the parent must still
  close its own copy. That exception is precisely the PR 9 bug.
* **Release** — ``close``/``shutdown``/``terminate``/``kill``/``join``/
  ``release`` on any alias, or managing the alias with ``with``. A
  release under ``if``/``try-except``/loop ancestors only covers *some*
  paths and is reported as such; a straight-line or ``finally`` release
  covers all of them.

The analysis is flow-insensitive by design (an early ``return`` before a
straight-line ``close()`` is not caught); it trades that for zero false
positives on the idiomatic shapes — ``with`` blocks, ownership-transfer
into handle objects, and attribute-held resources (whose lifecycle
belongs to the owning object, not one frame).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..callgraph import CallGraph, CallSite
from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register
from ..visitor import names_in

#: Dotted external callables whose result owns an OS resource.
_RESOURCE_EXTERNAL = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.socketpair",
        "open",
        "io.open",
        "subprocess.Popen",
        "multiprocessing.Pipe",
        "multiprocessing.Process",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Constructors returning a *pair* of resources (track every element).
_PAIR_EXTERNAL = frozenset({"multiprocessing.Pipe", "socket.socketpair"})

#: Method-name seeds on unresolved receivers: ``ctx.Pipe()``,
#: ``sock.accept()``, ``ctx.Process(...)`` — conservative on dispatch.
_RESOURCE_METHODS = frozenset({"Pipe", "accept", "Process"})
_PAIR_METHODS = frozenset({"Pipe"})
#: ``conn, addr = sock.accept()`` — only the connection is a resource.
_FIRST_ONLY_METHODS = frozenset({"accept"})

#: Receiver methods that release the resource.
_CLOSERS = frozenset(
    {"close", "shutdown", "terminate", "kill", "join", "release"}
)


def _is_process_ctor(site: Optional[CallSite], call: ast.Call) -> bool:
    """Does this call construct a worker process (so FDs in its arguments
    are *duplicated into the child*, not handed over)?"""
    if site is not None:
        if site.external is not None and site.external.split(".")[-1] == (
            "Process"
        ):
            return True
        if site.method == "Process":
            return True
    func = call.func
    if isinstance(func, ast.Name) and func.id == "Process":
        return True
    return isinstance(func, ast.Attribute) and func.attr == "Process"


@dataclass
class _Tracked:
    """One resource created in the frame under analysis."""

    names: Set[str]
    node: ast.AST  # the creating assignment (findings anchor here)
    what: str
    inherited: bool = False  # duplicated into a child Process
    escaped: bool = False
    returned: bool = False
    #: one entry per release site: True = covers all paths.
    closes: List[bool] = dc_field(default_factory=list)


def _frame_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    """Every node of the function's own frame — nested ``def``/``lambda``
    bodies excluded (their resources are their own responsibility)."""

    def walk(nodes) -> Iterator[ast.AST]:
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            yield from walk(ast.iter_child_nodes(node))

    yield from walk(func_node.body)  # type: ignore[attr-defined]


def _covers_all_paths(node: ast.AST, func_node: ast.AST) -> bool:
    """A release at ``node`` reaches every path iff no conditional
    construct sits between it and the frame: ``finally`` blocks count as
    unconditional, ``if``/loops/``except`` arms do not."""
    cursor = getattr(node, "parent", None)
    while cursor is not None and cursor is not func_node:
        if isinstance(
            cursor,
            (ast.If, ast.While, ast.For, ast.AsyncFor, ast.ExceptHandler),
        ):
            return False
        cursor = getattr(cursor, "parent", None)
    return True


def _unwrap_await(value: ast.AST) -> ast.AST:
    return value.value if isinstance(value, ast.Await) else value


def _creations(
    node: ast.Assign,
    graph: CallGraph,
    internal_ctors: Dict[str, str],
) -> List[_Tracked]:
    if len(node.targets) != 1:
        return []
    value = _unwrap_await(node.value)
    if not isinstance(value, ast.Call):
        return []
    site = graph.site_for(value)
    what: Optional[str] = None
    pair = False
    first_only = False
    if site is not None and site.external in _RESOURCE_EXTERNAL:
        what = site.external
        pair = site.external in _PAIR_EXTERNAL
    elif (
        site is not None
        and site.callee is None
        and site.external is None
        and site.method in _RESOURCE_METHODS
    ):
        what = f".{site.method}"
        pair = site.method in _PAIR_METHODS
        first_only = site.method in _FIRST_ONLY_METHODS
    elif site is not None and site.callee in internal_ctors:
        what = internal_ctors[site.callee]
    if what is None:
        return []
    target = node.targets[0]
    if isinstance(target, ast.Name):
        return [_Tracked(names={target.id}, node=node, what=f"{what}()")]
    if isinstance(target, ast.Tuple) and all(
        isinstance(elt, ast.Name) for elt in target.elts
    ):
        elts = [elt.id for elt in target.elts]  # type: ignore[union-attr]
        if first_only:
            elts = elts[:1]
        elif not pair:
            return []  # unpacking a non-pair resource: shape unknown
        # Each end of a pair is its own resource: returning one end must
        # not absolve the frame of the other (PR 9: parent_end escaped
        # into the handle while child_end leaked).
        return [
            _Tracked(names={name}, node=node, what=f"{what}()")
            for name in elts
        ]
    return []  # attribute/subscript-held: the owner's lifecycle


def _scan_function(
    func_node: ast.AST,
    graph: CallGraph,
    internal_ctors: Dict[str, str],
) -> List[_Tracked]:
    tracked: List[_Tracked] = []
    creation_nodes: Set[int] = set()
    for node in _frame_nodes(func_node):
        if isinstance(node, ast.Assign):
            items = _creations(node, graph, internal_ctors)
            if items:
                tracked.extend(items)
                creation_nodes.add(id(node))
    if not tracked:
        return tracked
    # Alias pass (twice reaches fixpoint for the chains rules care about).
    for _ in range(2):
        for node in _frame_nodes(func_node):
            if (
                isinstance(node, ast.Assign)
                and id(node) not in creation_nodes
                and isinstance(node.value, ast.Name)
            ):
                for item in tracked:
                    if node.value.id in item.names:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                item.names.add(target.id)
    # Use pass: escapes, inheritance into children, releases.
    for node in _frame_nodes(func_node):
        if isinstance(node, (ast.Return, ast.Yield)):
            referenced = names_in(node.value)
            for item in tracked:
                if referenced & item.names:
                    item.escaped = True
                    if isinstance(node, ast.Return):
                        item.returned = True
        elif isinstance(node, ast.Assign) and id(node) not in creation_nodes:
            referenced = names_in(node.value)
            stores = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
            boxed = isinstance(
                node.value, (ast.Tuple, ast.List, ast.Set, ast.Dict)
            )
            if stores or boxed:
                for item in tracked:
                    if referenced & item.names:
                        item.escaped = True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _CLOSERS
            ):
                for item in tracked:
                    if func.value.id in item.names:
                        item.closes.append(
                            _covers_all_paths(node, func_node)
                        )
                continue
            site = graph.site_for(node)
            process_ctor = _is_process_ctor(site, node)
            arg_names: Set[str] = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                arg_names |= names_in(arg)
            for item in tracked:
                if not (arg_names & item.names):
                    continue
                if process_ctor:
                    # The child holds a duplicate FD; the parent still
                    # owns (and must close) its copy — PR 9's bug class.
                    item.inherited = True
                else:
                    item.escaped = True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for with_item in node.items:
                expr = with_item.context_expr
                if isinstance(expr, ast.Name):
                    for item in tracked:
                        if expr.id in item.names:
                            item.closes.append(
                                _covers_all_paths(node, func_node)
                            )
    return tracked


@register
class ResourceLifecycleRule(Rule):
    id = "resource-lifecycle"
    description = (
        "locally created sockets/pipes/processes/files must be released "
        "on every path or have ownership handed off — passing an FD to a "
        "child Process duplicates it and the parent must still close its "
        "copy"
    )

    def __init__(self) -> None:
        self._project_token: Optional[int] = None
        self._findings: Dict[str, List[Finding]] = {}

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        if self._project_token != id(project):
            self._analyze(project)
            self._project_token = id(project)
        return self._findings.get(module.rel_path, [])

    def _analyze(self, project: Project) -> None:
        graph: CallGraph = project.call_graph()
        internal_ctors: Dict[str, str] = {}
        scans: Dict[str, List[_Tracked]] = {}
        # Functions returning a tracked resource are constructors too;
        # three rounds bound the fixpoint (ctor -> wrapper -> wrapper).
        for _ in range(3):
            scans = {
                qname: _scan_function(info.node, graph, internal_ctors)
                for qname, info in graph.functions.items()
            }
            grown = False
            for qname, items in scans.items():
                for item in items:
                    if item.returned and qname not in internal_ctors:
                        internal_ctors[qname] = item.what
                        grown = True
            if not grown:
                break
        self._findings = {}
        for qname, items in scans.items():
            info = graph.functions[qname]
            for item in items:
                finding = self._verdict(info.module, info.name, item)
                if finding is not None:
                    self._findings.setdefault(
                        info.module.rel_path, []
                    ).append(finding)

    def _verdict(
        self, module: ModuleInfo, func_name: str, item: _Tracked
    ) -> Optional[Finding]:
        if item.escaped or any(item.closes):
            return None
        name = sorted(item.names)[0] if item.names else "<resource>"
        inherited_note = (
            " — and it was passed to a child Process, so every worker "
            "forked afterwards inherits a duplicate FD and EOF never "
            "arrives (the PR 9 spawn bug)"
            if item.inherited
            else ""
        )
        if item.closes:  # releases exist, but all sit on conditional paths
            return module.finding(
                self.id,
                item.node,
                f"{item.what} `{name}` in {func_name}() is closed only on "
                f"some paths{inherited_note}; release it in a finally "
                "block or manage it with `with`",
            )
        return module.finding(
            self.id,
            item.node,
            f"{item.what} `{name}` in {func_name}() is never closed and "
            f"never escapes this frame{inherited_note}; release it or "
            "hand ownership off",
        )
