"""``error-registry`` — wire error codes are declared once, dispatched
most-derived-first.

Error codes are wire protocol: stable strings non-Python clients switch
on, never Python class names. PR 6 added dual-derived exception types
(``DeadlineExceededError`` derives *both* ``CloakingError`` and
``DeanonymizationError``) and with them the dispatch rule the protocol
silently depends on: the ``(exception class, code)`` table is scanned
first-match, so **a subclass must appear before every one of its bases**
— an entry out of order makes derived errors dispatch to the base code
and changes the wire behavior without failing any type check. Until this
rule, that ordering was enforced only by convention.

The rule checks, across the whole scanned tree:

* every dispatch table — a module-level literal tuple/list of
  ``(ExceptionClass, "code")`` pairs — lives in ``errors.py``, beside the
  hierarchy it dispatches over (other modules import or alias it);
* each code string is declared exactly once in ``errors.py``;
* table order is most-derived-first, computed from the class hierarchy
  parsed out of ``errors.py`` (multiple inheritance included);
* use sites match declarations: a dict literal mapping code strings to
  exception classes (the ``_MESSAGE_ONLY_FALLBACK`` pattern) or a
  ``code == "..."`` comparison naming a code that is not declared is a
  typo'd or stale code — flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Finding, ModuleInfo, Project
from ..registry import Rule, register

#: (class name, code, entry node) triples of one dispatch table.
_TableEntry = Tuple[str, str, ast.AST]


def _dispatch_table(node: ast.stmt) -> Optional[List[_TableEntry]]:
    """Parse ``node`` as a dispatch-table assignment, or ``None``.

    A dispatch table is a module-level (Ann)Assign whose value is a
    tuple/list of two-tuples ``(Name-or-Attribute, string constant)``.
    """
    if isinstance(node, ast.Assign):
        value = node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        value = node.value
    else:
        return None
    if not isinstance(value, (ast.Tuple, ast.List)) or not value.elts:
        return None
    entries: List[_TableEntry] = []
    for element in value.elts:
        if not isinstance(element, ast.Tuple) or len(element.elts) != 2:
            return None
        cls_node, code_node = element.elts
        if not isinstance(code_node, ast.Constant) or not isinstance(
            code_node.value, str
        ):
            return None
        if isinstance(cls_node, ast.Name):
            cls_name = cls_node.id
        elif isinstance(cls_node, ast.Attribute):
            cls_name = cls_node.attr
        else:
            return None
        entries.append((cls_name, code_node.value, element))
    return entries


def _class_bases(modules: List[ModuleInfo]) -> Dict[str, Set[str]]:
    """Direct base names of every class defined in ``modules``."""
    bases: Dict[str, Set[str]] = {}
    for module in modules:
        if module.tree is None:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.add(base.attr)
                bases[node.name] = names
    return bases


def _is_strict_ancestor(
    ancestor: str, descendant: str, bases: Dict[str, Set[str]]
) -> bool:
    if ancestor == descendant:
        return False
    seen: Set[str] = set()
    frontier = [descendant]
    while frontier:
        current = frontier.pop()
        for base in bases.get(current, ()):
            if base == ancestor:
                return True
            if base not in seen:
                seen.add(base)
                frontier.append(base)
    return False


@register
class ErrorRegistryRule(Rule):
    id = "error-registry"
    description = (
        "wire error codes declared exactly once in errors.py; dispatch "
        "tables ordered most-derived-first (the PR 6 dispatch rule)"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        registries = project.modules_named("errors.py")
        bases = _class_bases(registries)
        declared: Dict[str, ModuleInfo] = {}
        exception_classes = set(bases)

        # Declarations: tables inside errors.py modules.
        for module in registries:
            if module.tree is None:
                continue
            for stmt in module.tree.body:
                entries = _dispatch_table(stmt)
                if entries is None:
                    continue
                yield from self._check_table(module, entries, bases, declared)

        # Tables and uses everywhere else.
        for module in project.modules:
            if module.tree is None or module in registries:
                continue
            for stmt in module.tree.body:
                entries = _dispatch_table(stmt)
                if entries is not None and self._looks_like_error_table(
                    entries, exception_classes
                ):
                    yield module.finding(
                        self.id,
                        stmt,
                        "error-code dispatch table declared outside "
                        "errors.py: declare it beside the exception "
                        "hierarchy and alias it here",
                    )
            if declared:
                yield from self._check_uses(module, declared, exception_classes)

    # ------------------------------------------------------------------
    def _check_table(
        self,
        module: ModuleInfo,
        entries: List[_TableEntry],
        bases: Dict[str, Set[str]],
        declared: Dict[str, ModuleInfo],
    ) -> Iterable[Finding]:
        for cls_name, code, node in entries:
            if code in declared:
                yield module.finding(
                    self.id,
                    node,
                    f"error code {code!r} is declared more than once; wire "
                    "codes must have exactly one declaration",
                )
            else:
                declared[code] = module
        # Most-derived-first: no entry may be preceded by one of its bases.
        for later_index, (later_cls, later_code, later_node) in enumerate(entries):
            for earlier_cls, earlier_code, _ in entries[:later_index]:
                if _is_strict_ancestor(earlier_cls, later_cls, bases):
                    yield module.finding(
                        self.id,
                        later_node,
                        f"{later_cls} ({later_code!r}) derives from "
                        f"{earlier_cls} ({earlier_code!r}) listed above it: "
                        "first-match dispatch would claim it for the base "
                        "code — order most-derived-first",
                    )
                    break

    # ------------------------------------------------------------------
    def _looks_like_error_table(
        self, entries: List[_TableEntry], exception_classes: Set[str]
    ) -> bool:
        if not exception_classes:
            return False
        return all(cls in exception_classes for cls, _, _ in entries)

    def _check_uses(
        self,
        module: ModuleInfo,
        declared: Dict[str, ModuleInfo],
        exception_classes: Set[str],
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict) and node.keys:
                if self._is_code_to_class_dict(node, exception_classes):
                    for key in node.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in declared
                        ):
                            yield module.finding(
                                self.id,
                                key,
                                f"error code {key.value!r} is not declared in "
                                "errors.py: typo'd or stale wire code",
                            )
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                left, right = node.left, node.comparators[0]
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    continue
                name, const = None, None
                if isinstance(left, ast.Name) and isinstance(right, ast.Constant):
                    name, const = left.id, right.value
                elif isinstance(right, ast.Name) and isinstance(
                    left, ast.Constant
                ):
                    name, const = right.id, left.value
                if (
                    name == "code"
                    and isinstance(const, str)
                    and const not in declared
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"comparison against error code {const!r} which is "
                        "not declared in errors.py: typo'd or stale wire code",
                    )

    def _is_code_to_class_dict(
        self, node: ast.Dict, exception_classes: Set[str]
    ) -> bool:
        if not node.values:
            return False
        for value in node.values:
            if isinstance(value, ast.Name):
                if value.id not in exception_classes:
                    return False
            elif isinstance(value, ast.Attribute):
                if value.attr not in exception_classes:
                    return False
            else:
                return False
        return all(
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            for key in node.keys
        )
