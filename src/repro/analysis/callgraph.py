"""The interprocedural core of ``reprolint``: call graph + fact propagation.

PRs 8–9 put the serving stack on a socket, and the bug classes that
surfaced there — an async handler transitively reaching a blocking call,
a forked worker inheriting a socket FD nobody closes — are *cross-function*
properties. A per-function AST check cannot see that ``async def
_serve()`` calls ``self._flush()`` calls ``helper()`` calls
``time.sleep()``; this module can.

Three layers:

* **Indexing** — every ``def``/``async def`` in the project gets a stable
  qualified name (``"repro.lbs.frontend:FrontendServer._flush"``), with a
  per-module class table (methods + resolvable base classes) so
  ``self.method()`` calls resolve through simple inheritance.
* **Call-site classification** — each :class:`ast.Call` in a function body
  becomes a :class:`CallSite` that is exactly one of: *internal* (resolved
  to a project function's qualified name), *external* (resolved through
  the alias tracker to a dotted path like ``time.sleep``), or
  *unresolved* (dynamic dispatch — an attribute call on a value whose
  type the AST cannot know; only the bare method name survives).
  Resolution is deliberately conservative: ``self.x()`` resolves through
  the class table and project-resolvable bases, ``mod.f()`` and
  ``Cls.m()`` through the import table (relative imports included), and
  anything rooted in a call result, subscript, or non-``self`` object
  stays unresolved rather than guessed.
* **Fact propagation** — :meth:`CallGraph.propagate` takes directly
  seeded facts (``{qname: reason}``) and runs a breadth-first fixpoint
  over reverse call edges: a function calling a function that has the
  fact acquires it, with the :class:`CallSite` recorded as the *witness*
  so rules can print the whole chain (``_serve() -> _flush() ->
  time.sleep``). A ``through`` predicate filters which callees conduct
  the fact — the loop-blocking rule, for instance, does not conduct
  blockingness through ``async`` callees (awaiting them is not blocking;
  they get their own finding).

Calls under ``lambda`` bodies and nested function definitions are *not*
attributed to the enclosing function — they are deferred work, not calls
the enclosing frame performs. Nested definitions are indexed as their own
functions (``"mod:outer.inner"``), without a synthetic edge from the
outer frame.

The graph is built once per :class:`~repro.analysis.core.Project` and
cached on it (``project.call_graph()``); with the content-hash parse
cache in :mod:`~repro.analysis.core` this keeps the full-tree CI gate
cheap even though five rules now consult the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .core import ModuleInfo, Project
from .visitor import ImportTable

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "Fact",
    "module_dotted_name",
]


def module_dotted_name(module: ModuleInfo) -> Tuple[str, str]:
    """``(module name, package)`` of a parsed file, derived from its
    repo-relative path: ``src/repro/lbs/frontend.py`` is module
    ``repro.lbs.frontend`` in package ``repro.lbs``; a package
    ``__init__.py`` is the package itself (and is its own relative-import
    base)."""
    parts = module.rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
        name = ".".join(parts) or module.path.stem
        return name, name
    name = ".".join(parts)
    package = ".".join(parts[:-1])
    return name, package


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed ``def``/``async def``."""

    qname: str
    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]
    is_async: bool

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]


@dataclass(frozen=True)
class CallSite:
    """One classified :class:`ast.Call` inside an indexed function.

    Exactly one of ``callee``/``external`` is set for resolved calls;
    both are ``None`` for dynamic dispatch, where only ``method`` (the
    bare attribute name, when the call was an attribute call) survives.
    ``awaited`` marks calls that are the direct operand of ``await`` —
    they produce awaitables, not blocking work, and most rules skip them.
    """

    node: ast.Call
    caller: str
    callee: Optional[str] = None
    external: Optional[str] = None
    method: Optional[str] = None
    awaited: bool = False

    @property
    def line(self) -> int:
        return self.node.lineno

    def describe(self) -> str:
        if self.callee is not None:
            return self.callee.split(":", 1)[-1] + "()"
        if self.external is not None:
            return self.external
        return f".{self.method}()" if self.method else "<call>"


@dataclass(frozen=True)
class Fact:
    """One function's hold on a propagated fact.

    ``reason`` is set when the function has the fact *directly* (it
    contains the seeding construct); ``via`` is set when it acquired the
    fact through a call — the witness :class:`CallSite` whose callee has
    the fact. Exactly one of the two is set.
    """

    qname: str
    reason: Optional[str] = None
    via: Optional[CallSite] = None


class _ClassTable:
    """Methods and resolvable bases of one class definition."""

    __slots__ = ("qname_prefix", "methods", "bases")

    def __init__(self, qname_prefix: str) -> None:
        self.qname_prefix = qname_prefix
        self.methods: Dict[str, str] = {}
        self.bases: List[str] = []  # dotted paths, import-table resolved


class CallGraph:
    """The project-wide call graph (build via :meth:`build`)."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qname -> FunctionInfo for every indexed def/async def.
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qname -> classified call sites in its body.
        self.sites: Dict[str, List[CallSite]] = {}
        self._modules: Dict[str, ModuleInfo] = {}
        self._imports: Dict[str, ImportTable] = {}
        #: (module name, class name) -> class table.
        self._classes: Dict[Tuple[str, str], _ClassTable] = {}
        #: module name -> {function name -> qname} (module-level defs).
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self._callers: Dict[str, List[CallSite]] = {}
        self._by_node: Dict[int, CallSite] = {}
        self._by_def: Dict[int, FunctionInfo] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project)
        for module in project.modules:
            if module.tree is None:
                continue
            name, package = module_dotted_name(module)
            graph._modules[name] = module
            graph._imports[name] = ImportTable(module.tree, package=package)
        for name, module in graph._modules.items():
            graph._index_module(name, module)
        for name, module in graph._modules.items():
            graph._classify_module(name, module)
        return graph

    def _index_module(self, mod_name: str, module: ModuleInfo) -> None:
        funcs: Dict[str, str] = {}
        self._module_funcs[mod_name] = funcs

        def index_body(
            body, prefix: str, class_name: Optional[str], table: Optional[_ClassTable]
        ) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{mod_name}:{prefix}{node.name}"
                    info = FunctionInfo(
                        qname=qname,
                        module=module,
                        node=node,
                        class_name=class_name,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                    )
                    self.functions[qname] = info
                    self._by_def[id(node)] = info
                    if not prefix:
                        funcs[node.name] = qname
                    if table is not None and prefix == table.qname_prefix:
                        table.methods[node.name] = qname
                    # Nested defs are their own functions, no edge from
                    # the enclosing frame (deferred, not called).
                    index_body(
                        node.body, f"{prefix}{node.name}.", class_name, table
                    )
                elif isinstance(node, ast.ClassDef):
                    cls_table = _ClassTable(f"{node.name}.")
                    self._classes[(mod_name, node.name)] = cls_table
                    imports = self._imports[mod_name]
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            cls_table.bases.append(
                                imports.aliases.get(base.id, base.id)
                            )
                        elif isinstance(base, ast.Attribute):
                            resolved = imports.resolve(base)
                            if resolved is not None:
                                cls_table.bases.append(resolved)
                    index_body(
                        node.body, f"{node.name}.", node.name, cls_table
                    )

        index_body(module.tree.body, "", None, None)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _lookup_dotted(self, dotted: str) -> Optional[str]:
        """Project-internal qname for a fully dotted path: a module-level
        function (``pkg.mod.f``) or a class method (``pkg.mod.Cls.m``)."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            if mod_name not in self._modules:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                hit = self._module_funcs[mod_name].get(rest[0])
                if hit is not None:
                    return hit
                # A class used as a callable: its constructor.
                if (mod_name, rest[0]) in self._classes:
                    return self._method_in_class(mod_name, rest[0], "__init__")
            elif len(rest) == 2:
                return self._method_in_class(mod_name, rest[0], rest[1])
            return None
        return None

    def _method_in_class(
        self, mod_name: str, class_name: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve ``method`` in ``class_name`` or its project-resolvable
        bases (depth-first, bounded — conservative on diamonds)."""
        if _depth > 8:
            return None
        table = self._classes.get((mod_name, class_name))
        if table is None:
            return None
        hit = table.methods.get(method)
        if hit is not None:
            return hit
        for base in table.bases:
            # Same-module base: bare name; imported base: dotted path.
            if "." not in base:
                found = self._method_in_class(mod_name, base, method, _depth + 1)
            else:
                parts = base.rsplit(".", 1)
                if parts[0] in self._modules:
                    found = self._method_in_class(
                        parts[0], parts[1], method, _depth + 1
                    )
                else:
                    found = None
            if found is not None:
                return found
        return None

    def _classify_call(
        self, call: ast.Call, mod_name: str, info: FunctionInfo
    ) -> CallSite:
        imports = self._imports[mod_name]
        awaited = isinstance(getattr(call, "parent", None), ast.Await)
        func = call.func
        callee: Optional[str] = None
        external: Optional[str] = None
        method: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
            local = self._module_funcs[mod_name].get(name)
            alias = imports.aliases.get(name)
            if local is not None and alias is None:
                callee = local
            elif (mod_name, name) in self._classes and alias is None:
                callee = self._method_in_class(mod_name, name, "__init__")
                external = None if callee else name
            elif alias is not None:
                callee = self._lookup_dotted(alias)
                external = None if callee else alias
            else:
                external = name  # builtin or unknown global, e.g. ``open``
        elif isinstance(func, ast.Attribute):
            method = func.attr
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if (
                isinstance(root, ast.Name)
                and root.id in ("self", "cls")
                and isinstance(func.value, ast.Name)  # exactly self.<m>()
                and info.class_name is not None
            ):
                callee = self._method_in_class(
                    mod_name, info.class_name, func.attr
                )
            elif isinstance(root, ast.Name) and root.id in ("self", "cls"):
                pass  # self.<attr>.<m>(): dynamic dispatch, unresolved
            elif (
                isinstance(root, ast.Name)
                and isinstance(func.value, ast.Name)
                and (mod_name, root.id) in self._classes
                and root.id not in imports.aliases
            ):
                # ``Cls.m()`` on a same-module class.
                callee = self._method_in_class(mod_name, root.id, func.attr)
            elif isinstance(root, ast.Name) and root.id in imports.aliases:
                resolved = imports.resolve(func)
                if resolved is not None:
                    callee = self._lookup_dotted(resolved)
                    external = None if callee else resolved
            # Any other root (a local, a call result, a subscript) is
            # dynamic dispatch: unresolved, bare method name only.
        return CallSite(
            node=call,
            caller=info.qname,
            callee=callee,
            external=external,
            method=method,
            awaited=awaited,
        )

    def _classify_module(self, mod_name: str, module: ModuleInfo) -> None:
        for qname, info in self.functions.items():
            if info.module is not module:
                continue
            sites = [
                self._classify_call(call, mod_name, info)
                for call in _own_calls(info.node)
            ]
            self.sites[qname] = sites
            for site in sites:
                self._by_node[id(site.node)] = site
                if site.callee is not None:
                    self._callers.setdefault(site.callee, []).append(site)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def function_at(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The indexed function whose body *directly* contains ``node``
        (nested defs and lambdas shadow their enclosing frame)."""
        cursor = getattr(node, "parent", None)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return self._by_def.get(id(cursor))
            if isinstance(cursor, ast.Lambda):
                return None
            cursor = getattr(cursor, "parent", None)
        return None

    def site_for(self, call: ast.Call) -> Optional[CallSite]:
        """The classified site of a call node seen during the build."""
        return self._by_node.get(id(call))

    def callers_of(self, qname: str) -> List[CallSite]:
        """Every resolved call site targeting ``qname``."""
        return list(self._callers.get(qname, ()))

    def propagate(
        self,
        seeds: Dict[str, str],
        *,
        through: Optional[Callable[[FunctionInfo], bool]] = None,
    ) -> Dict[str, Fact]:
        """Fixpoint fact propagation over reverse call edges.

        ``seeds`` maps directly-seeded qnames to the human-readable reason
        they hold the fact. The result maps every function holding the
        fact (directly or transitively) to its :class:`Fact`; breadth-first
        order makes each ``via`` witness a shortest chain toward a seed.
        ``through`` filters *conduction*: a callee for which it returns
        False keeps its own fact but does not pass it to callers.
        """
        facts: Dict[str, Fact] = {
            qname: Fact(qname=qname, reason=reason)
            for qname, reason in seeds.items()
            if qname in self.functions
        }
        frontier = list(facts)
        while frontier:
            next_frontier: List[str] = []
            for target in frontier:
                info = self.functions[target]
                if through is not None and not through(info):
                    continue
                for site in self._callers.get(target, ()):
                    if site.caller in facts:
                        continue
                    facts[site.caller] = Fact(qname=site.caller, via=site)
                    next_frontier.append(site.caller)
            frontier = next_frontier
        return facts

    def chain(self, fact: Fact, facts: Dict[str, Fact], limit: int = 8) -> str:
        """Render a fact's witness chain: ``a() -> b() -> <reason>``."""
        hops: List[str] = []
        cursor: Optional[Fact] = fact
        while cursor is not None and len(hops) < limit:
            if cursor.reason is not None:
                hops.append(cursor.reason)
                break
            site = cursor.via
            if site is None or site.callee is None:
                break
            target = self.functions.get(site.callee)
            label = site.describe()
            if target is not None:
                label = f"{label} ({target.module.rel_path}:{target.node.lineno})"
            hops.append(label)
            cursor = facts.get(site.callee)
        return " -> ".join(hops)


def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
    """The calls a function's frame itself performs: every ``ast.Call``
    under it except those inside nested defs or lambdas (deferred work,
    indexed separately / treated as opaque)."""

    def walk(nodes) -> Iterator[ast.Call]:
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                yield node
            yield from walk(ast.iter_child_nodes(node))

    yield from walk(func.body)  # type: ignore[attr-defined]
