"""``python -m repro.analysis`` — run the reprolint CLI."""

import sys

from .cli import main

sys.exit(main())
