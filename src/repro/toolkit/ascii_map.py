"""Terminal rendering of cloaking regions (a no-display fallback of Fig. 4).

Rasterises the map onto a character grid: plain roads as ``.``, cloaking
levels as digits (``0`` marks the user's segment, ``1``–``9`` the levels),
keeping the *finest* level visible wherever levels overlap. Useful in CI
logs and the CLI apps' ``--ascii`` mode.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Mapping, Optional

from ..roadnet.geometry import Point, point_along
from ..roadnet.graph import RoadNetwork

__all__ = ["render_ascii_map"]


def render_ascii_map(
    network: RoadNetwork,
    regions_by_level: Optional[Mapping[int, Iterable[int]]] = None,
    width: int = 72,
    height: int = 28,
) -> str:
    """An ASCII raster of the map with level overlays.

    Args:
        network: The map.
        regions_by_level: ``{level: segment ids}``; lower levels win cells.
        width: Character columns.
        height: Character rows.
    """
    if width < 8 or height < 4:
        raise ValueError(f"raster too small: {width}x{height}")
    bounds = network.bounding_box()
    map_width = max(bounds.width, 1e-9)
    map_height = max(bounds.height, 1e-9)
    grid: List[List[str]] = [[" "] * width for __ in range(height)]

    def plot(point: Point, glyph: str, priority: bool = False) -> None:
        col = int((point.x - bounds.min_x) / map_width * (width - 1))
        row = int((point.y - bounds.min_y) / map_height * (height - 1))
        row = height - 1 - row  # north up
        current = grid[row][col]
        if priority or current in (" ", "."):
            grid[row][col] = glyph

    def draw_segment(segment_id: int, glyph: str, priority: bool) -> None:
        a, b = network.segment_endpoints(segment_id)
        samples = max(2, int(a.distance_to(b) / map_width * width) + 1)
        for index in range(samples + 1):
            plot(point_along(a, b, index / samples), glyph, priority)

    for segment_id in network.segment_ids():
        draw_segment(segment_id, ".", priority=False)
    if regions_by_level:
        for level in sorted(regions_by_level, reverse=True):
            glyph = str(min(level, 9))
            for segment_id in sorted(set(regions_by_level[level])):
                draw_segment(segment_id, glyph, priority=True)
    return "\n".join("".join(row).rstrip() for row in grid)
