"""The demonstration toolkit: headless Anonymizer / De-anonymizer apps and
map renderers (the paper's Section IV, without a display)."""

from .ascii_map import render_ascii_map
from .maps import resolve_map
from .svg import LEVEL_PALETTE, SvgMapRenderer

__all__ = ["SvgMapRenderer", "LEVEL_PALETTE", "render_ascii_map", "resolve_map"]
