"""The 'Anonymizer' CLI — the headless counterpart of the demo paper's GUI.

Reproduces the Section IV workflow end to end: choose a map, generate a
fleet ("10,000 cars randomly generated along the roads based on Gaussian
distribution"), set the anonymization parameters (levels, per-level k, the
spatial tolerance), auto-generate access keys, anonymize, and visualise the
coloured multi-level regions — written as SVG/ASCII instead of a window.

Example::

    reversecloak-anonymize --map grid:12x12 --cars 800 --levels 3 \
        --base-k 5 --k-step 5 --out envelope.json --keys-out keys.json \
        --svg cloak.svg

The envelope file is what the owner uploads to the LBS provider; the keys
file stays with the owner ("managed locally by the 'Anonymizer'").
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..core.engine import ReverseCloakEngine
from ..core.profile import PrivacyProfile
from ..core.rple import ReversiblePreassignmentExpansion
from ..errors import ReverseCloakError
from ..keys.keys import KeyChain
from ..mobility.simulator import TrafficSimulator
from .ascii_map import render_ascii_map
from .maps import resolve_map
from .svg import SvgMapRenderer

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reversecloak-anonymize",
        description="Cloak a user's road-network location under multiple "
        "reversible privacy levels (ReverseCloak Anonymizer).",
    )
    parser.add_argument("--map", default="grid:12x12", help="map spec (see docs)")
    parser.add_argument("--cars", type=int, default=800, help="fleet size")
    parser.add_argument("--seed", type=int, default=2017, help="simulation seed")
    parser.add_argument(
        "--warmup-steps", type=int, default=5, help="simulation ticks before cloaking"
    )
    parser.add_argument(
        "--user-segment",
        type=int,
        default=None,
        help="segment of the actual user (default: the busiest segment)",
    )
    parser.add_argument("--levels", type=int, default=3, help="privacy levels N-1")
    parser.add_argument("--base-k", type=int, default=5, help="delta_k of level 1")
    parser.add_argument("--k-step", type=int, default=5, help="delta_k increment")
    parser.add_argument("--base-l", type=int, default=3, help="delta_l of level 1")
    parser.add_argument("--l-step", type=int, default=2, help="delta_l increment")
    parser.add_argument(
        "--max-segments",
        type=int,
        default=None,
        help="spatial tolerance as a segment cap (default: auto)",
    )
    parser.add_argument(
        "--algorithm", choices=("rge", "rple"), default="rge", help="cloaking algorithm"
    )
    parser.add_argument(
        "--list-length", type=int, default=8, help="RPLE transition list length T"
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit sealed reversal hints (pure search-mode envelope)",
    )
    parser.add_argument("--out", default="envelope.json", help="envelope output path")
    parser.add_argument(
        "--keys-out", default="keys.json", help="access-key file output path"
    )
    parser.add_argument("--svg", default=None, help="write an SVG visualisation here")
    parser.add_argument(
        "--ascii", action="store_true", help="print an ASCII map to stdout"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReverseCloakError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run(args: argparse.Namespace) -> int:
    network = resolve_map(args.map)
    print(
        f"map: {network.name} ({network.junction_count} junctions, "
        f"{network.segment_count} segments)"
    )
    simulator = TrafficSimulator(network, n_cars=args.cars, seed=args.seed)
    simulator.run(args.warmup_steps)
    snapshot = simulator.snapshot()
    print(f"fleet: {snapshot.user_count} cars after {args.warmup_steps} ticks")

    if args.user_segment is not None:
        user_segment = args.user_segment
        network.segment(user_segment)
    else:
        occupied = snapshot.occupied_segments()
        user_segment = max(occupied, key=lambda sid: (snapshot.count_on(sid), -sid))
    print(f"user segment: {user_segment} ({snapshot.count_on(user_segment)} users on it)")

    profile = PrivacyProfile.uniform(
        levels=args.levels,
        base_k=args.base_k,
        k_step=args.k_step,
        base_l=args.base_l,
        l_step=args.l_step,
        max_segments=args.max_segments,
    )
    chain = KeyChain.generate(profile.level_count)  # "Auto key generation"
    if args.algorithm == "rple":
        algorithm = ReversiblePreassignmentExpansion.for_network(
            network, list_length=args.list_length
        )
    else:
        algorithm = None  # engine defaults to RGE
    engine = ReverseCloakEngine(network, algorithm)

    envelope = engine.anonymize(
        user_segment, snapshot, profile, chain, include_hints=not args.no_hints
    )
    print(
        f"cloaked: {len(envelope.region)} segments across "
        f"{envelope.top_level} levels (steps per level: "
        f"{[record.steps for record in envelope.levels]})"
    )

    Path(args.out).write_text(envelope.to_json())
    print(f"envelope written to {args.out}")
    Path(args.keys_out).write_text(
        json.dumps({"levels": chain.to_hex_list()}, indent=1)
    )
    print(f"keys written to {args.keys_out} (keep private!)")

    # The owner holds every key, so the GUI can show all nested regions.
    result = engine.deanonymize(envelope, chain, target_level=0)
    regions = {level: result.regions[level] for level in sorted(result.regions)}
    for level in sorted(regions):
        print(f"  L{level}: {len(regions[level])} segments")
    if args.svg:
        renderer = SvgMapRenderer(network)
        renderer.render_to_file(
            args.svg,
            regions_by_level=regions,
            car_positions=simulator.positions().values(),
            title=f"ReverseCloak — {network.name}, {envelope.algorithm.upper()}",
        )
        print(f"SVG written to {args.svg}")
    if args.ascii:
        print(render_ascii_map(network, regions))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
