"""Headless SVG rendering of maps, fleets and multi-level cloaking regions.

The demo paper's Figure 4 shows the Anonymizer GUI visualising "the results
as several colored regions on the map". This module reproduces that output
as standalone SVG files (decision D10: the toolkit is headless) — the
outermost level is drawn first in the palest colour, each finer level
over-painted in a stronger one, and the L0 segment in the accent colour.
"""

from __future__ import annotations

from pathlib import Path
from typing import AbstractSet, Dict, Iterable, Mapping, Optional, Sequence, Union

from ..roadnet.geometry import Point
from ..roadnet.graph import RoadNetwork

__all__ = ["SvgMapRenderer", "LEVEL_PALETTE"]

#: Colour per privacy level: index 0 is L0 (the user), rising indices are
#: coarser levels. Palettes longer than the level count simply truncate.
LEVEL_PALETTE = (
    "#d62728",  # L0 - red (the actual user's segment)
    "#ff7f0e",  # L1 - orange
    "#2ca02c",  # L2 - green
    "#1f77b4",  # L3 - blue
    "#9467bd",  # L4 - purple
    "#8c564b",  # L5 - brown
    "#e377c2",  # L6 - pink
    "#17becf",  # L7 - cyan
)
_BACKGROUND = "#ffffff"
_ROAD_COLOR = "#c8c8c8"
_CAR_COLOR = "#555555"


class SvgMapRenderer:
    """Renders a road network and overlays into an SVG document.

    Args:
        network: The map to render.
        width: Output width in pixels; height follows the map aspect ratio.
        margin: Blank border in pixels.
    """

    def __init__(
        self, network: RoadNetwork, width: int = 900, margin: int = 20
    ) -> None:
        if width < 100:
            raise ValueError(f"width must be >= 100 px, got {width}")
        self._network = network
        self._bounds = network.bounding_box()
        self._margin = margin
        self._width = width
        usable = width - 2 * margin
        map_width = max(self._bounds.width, 1e-9)
        map_height = max(self._bounds.height, 1e-9)
        self._scale = usable / map_width
        self._height = int(map_height * self._scale) + 2 * margin

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def _px(self, point: Point) -> str:
        x = self._margin + (point.x - self._bounds.min_x) * self._scale
        # SVG y grows downward; flip so north stays up.
        y = (
            self._height
            - self._margin
            - (point.y - self._bounds.min_y) * self._scale
        )
        return f"{x:.1f},{y:.1f}"

    def _segment_line(
        self, segment_id: int, color: str, stroke_width: float, opacity: float = 1.0
    ) -> str:
        a, b = self._network.segment_endpoints(segment_id)
        ax, ay = self._px(a).split(",")
        bx, by = self._px(b).split(",")
        return (
            f'<line x1="{ax}" y1="{ay}" x2="{bx}" y2="{by}" '
            f'stroke="{color}" stroke-width="{stroke_width:.1f}" '
            f'stroke-opacity="{opacity:.2f}" stroke-linecap="round"/>'
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(
        self,
        regions_by_level: Optional[Mapping[int, Iterable[int]]] = None,
        car_positions: Optional[Iterable[Point]] = None,
        title: str = "",
    ) -> str:
        """The SVG document as a string.

        Args:
            regions_by_level: ``{level: segment ids}``; levels are painted
                coarsest-first so finer levels stay visible on top.
            car_positions: Optional fleet positions rendered as dots.
            title: Caption placed at the top-left corner.
        """
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self._width}" '
            f'height="{self._height}" viewBox="0 0 {self._width} '
            f'{self._height}">',
            f'<rect width="100%" height="100%" fill="{_BACKGROUND}"/>',
        ]
        for segment_id in self._network.segment_ids():
            parts.append(self._segment_line(segment_id, _ROAD_COLOR, 1.2))
        if car_positions is not None:
            for position in car_positions:
                xy = self._px(position).split(",")
                parts.append(
                    f'<circle cx="{xy[0]}" cy="{xy[1]}" r="1.6" '
                    f'fill="{_CAR_COLOR}" fill-opacity="0.5"/>'
                )
        if regions_by_level:
            for level in sorted(regions_by_level, reverse=True):
                color = LEVEL_PALETTE[min(level, len(LEVEL_PALETTE) - 1)]
                width = 3.0 + 1.4 * (len(LEVEL_PALETTE) - min(level, 7))
                for segment_id in sorted(set(regions_by_level[level])):
                    parts.append(
                        self._segment_line(segment_id, color, width, opacity=0.9)
                    )
        if title:
            parts.append(
                f'<text x="{self._margin}" y="{self._margin - 4}" '
                f'font-family="sans-serif" font-size="13" fill="#333">'
                f"{title}</text>"
            )
        if regions_by_level:
            parts.append(self._legend(sorted(regions_by_level)))
        parts.append("</svg>")
        return "\n".join(parts)

    def _legend(self, levels: Sequence[int]) -> str:
        """A small colour legend in the top-right corner."""
        entries = []
        x = self._width - 110
        for index, level in enumerate(levels):
            y = self._margin + 14 * index
            color = LEVEL_PALETTE[min(level, len(LEVEL_PALETTE) - 1)]
            label = "actual user" if level == 0 else f"level L{level}"
            entries.append(
                f'<rect x="{x}" y="{y}" width="10" height="10" fill="{color}"/>'
                f'<text x="{x + 14}" y="{y + 9}" font-family="sans-serif" '
                f'font-size="10" fill="#333">{label}</text>'
            )
        return "".join(entries)

    def render_to_file(
        self,
        path: Union[str, Path],
        regions_by_level: Optional[Mapping[int, Iterable[int]]] = None,
        car_positions: Optional[Iterable[Point]] = None,
        title: str = "",
    ) -> Path:
        """Render and write the SVG; returns the written path."""
        output = Path(path)
        output.write_text(self.render(regions_by_level, car_positions, title))
        return output
