"""Map specification strings shared by the toolkit CLI apps.

Both the Anonymizer and the De-anonymizer must operate on the *identical*
road network (the reversal protocol depends on it), so the apps accept a
compact map spec that deterministically reconstructs the same graph:

* ``grid:ROWSxCOLS[:SPACING]`` — e.g. ``grid:12x12`` or ``grid:8x10:150``
* ``radial:RINGSxSPOKES`` — e.g. ``radial:6x10``
* ``atlanta[:SCALE[:SEED]]`` — the paper-scale synthetic map, e.g.
  ``atlanta:0.25``
* ``fig1`` / ``fig2`` / ``fig3`` — the figure fixtures
* any other value — a path to a JSON map file written by
  :func:`repro.roadnet.save_network_json`
"""

from __future__ import annotations

from pathlib import Path

from ..errors import RoadNetworkError
from ..roadnet.generators import (
    atlanta_like,
    fig1_network,
    fig2_network,
    fig3_network,
    grid_network,
    radial_network,
)
from ..roadnet.graph import RoadNetwork
from ..roadnet.io import load_network_json

__all__ = ["resolve_map"]


def resolve_map(spec: str) -> RoadNetwork:
    """Build or load the road network described by ``spec``."""
    if not spec:
        raise RoadNetworkError("empty map spec")
    head, __, rest = spec.partition(":")
    if head == "grid":
        dims, __, spacing = rest.partition(":")
        rows, __, cols = dims.partition("x")
        try:
            return grid_network(
                int(rows), int(cols), float(spacing) if spacing else 100.0
            )
        except ValueError as exc:
            raise RoadNetworkError(f"bad grid spec {spec!r}: {exc}") from exc
    if head == "radial":
        rings, __, spokes = rest.partition("x")
        try:
            return radial_network(int(rings), int(spokes))
        except ValueError as exc:
            raise RoadNetworkError(f"bad radial spec {spec!r}: {exc}") from exc
    if head == "atlanta":
        scale_text, __, seed_text = rest.partition(":")
        try:
            scale = float(scale_text) if scale_text else 1.0
            seed = int(seed_text) if seed_text else 2017
        except ValueError as exc:
            raise RoadNetworkError(f"bad atlanta spec {spec!r}: {exc}") from exc
        return atlanta_like(seed=seed, scale=scale)
    if head == "fig1" and not rest:
        return fig1_network()
    if head == "fig2" and not rest:
        return fig2_network()
    if head == "fig3" and not rest:
        return fig3_network()
    path = Path(spec)
    if path.exists():
        return load_network_json(path)
    raise RoadNetworkError(f"unrecognised map spec and no such file: {spec!r}")
