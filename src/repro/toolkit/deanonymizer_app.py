"""The 'De-anonymizer' CLI — the requester side of the demo toolkit.

Reproduces the Section IV workflow: a location data requester fetches the
envelope from the LBS provider, obtains (a suffix of) the access keys from
the owner per their trust level, runs the de-anonymization algorithm, and
visualises the reduced cloaking region.

Example::

    reversecloak-deanonymize --map grid:12x12 --envelope envelope.json \
        --keys keys.json --target-level 1 --svg reduced.svg

Grant simulation: ``--grant-from-level 2`` drops the keys below level 2,
emulating a requester the owner only trusts down to level 2's region.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..core.engine import ReverseCloakEngine
from ..core.envelope import CloakEnvelope
from ..errors import ReverseCloakError
from ..keys.keys import KeyChain
from .ascii_map import render_ascii_map
from .maps import resolve_map
from .svg import SvgMapRenderer

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reversecloak-deanonymize",
        description="Selectively de-anonymize a ReverseCloak envelope with "
        "the access keys you hold.",
    )
    parser.add_argument("--map", required=True, help="map spec (must match owner's)")
    parser.add_argument("--envelope", required=True, help="envelope JSON path")
    parser.add_argument("--keys", required=True, help="key file from the owner")
    parser.add_argument(
        "--target-level",
        type=int,
        default=0,
        help="lowest level to recover (0 = exact segment)",
    )
    parser.add_argument(
        "--grant-from-level",
        type=int,
        default=1,
        help="simulate holding keys only for levels >= this",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "hint", "search"),
        default="auto",
        help="reversal mode",
    )
    parser.add_argument("--svg", default=None, help="write an SVG visualisation here")
    parser.add_argument(
        "--ascii", action="store_true", help="print an ASCII map to stdout"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReverseCloakError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run(args: argparse.Namespace) -> int:
    network = resolve_map(args.map)
    envelope = CloakEnvelope.from_json(Path(args.envelope).read_text())
    print(
        f"envelope: {envelope.algorithm.upper()}, {envelope.top_level} levels, "
        f"outer region {len(envelope.region)} segments"
    )

    key_document = json.loads(Path(args.keys).read_text())
    chain = KeyChain.from_hex_list(key_document["levels"])
    granted = {
        key.level: key for key in chain if key.level >= args.grant_from_level
    }
    lowest_reachable = args.grant_from_level - 1
    if args.target_level < lowest_reachable:
        print(
            f"note: held keys only reach level {lowest_reachable}; "
            f"requested level {args.target_level} is out of reach",
            file=sys.stderr,
        )
        return 2
    print(
        f"keys held: levels {sorted(granted)} "
        f"(can reduce to level {lowest_reachable})"
    )

    engine = ReverseCloakEngine.for_envelope(network, envelope)
    result = engine.deanonymize(
        envelope, granted, target_level=args.target_level, mode=args.mode
    )
    regions = {level: result.regions[level] for level in sorted(result.regions)}
    for level in sorted(regions, reverse=True):
        marker = " (recovered)" if level < envelope.top_level else " (public)"
        print(f"  L{level}: {len(regions[level])} segments{marker}")
    finest = regions[min(regions)]
    print(f"finest view: level {min(regions)} -> segments {list(finest)}")

    if args.svg:
        renderer = SvgMapRenderer(network)
        renderer.render_to_file(
            args.svg,
            regions_by_level=regions,
            title=(
                f"ReverseCloak de-anonymized to L{min(regions)} "
                f"— {network.name}"
            ),
        )
        print(f"SVG written to {args.svg}")
    if args.ascii:
        print(render_ascii_map(network, regions))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
