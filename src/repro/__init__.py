"""ReverseCloak: a reversible multi-level location privacy protection system.

A from-scratch reproduction of *ReverseCloak: A Reversible Multi-level
Location Privacy Protection System* (Li, Palanisamy, Kalaivanan,
Raghunathan — ICDCS 2017) and the algorithms of its companion paper
(CIKM 2015): reversible location cloaking over road networks with
multi-level, key-controlled de-anonymization.

Quickstart::

    from repro import (
        ReverseCloakEngine, PrivacyProfile, KeyChain,
        grid_network, TrafficSimulator,
    )

    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=500, seed=7)
    snapshot = simulator.snapshot()
    profile = PrivacyProfile.uniform(levels=3, base_k=5, k_step=5,
                                     base_l=3, l_step=2, max_segments=60)
    chain = KeyChain.generate(profile.level_count)

    engine = ReverseCloakEngine(network)
    envelope = engine.anonymize(user_segment=100, snapshot=snapshot,
                                profile=profile, chain=chain)
    result = engine.deanonymize(envelope, chain, target_level=0)
    assert result.region_at(0) == (100,)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced evaluation.
"""

from .core import (
    CloakEnvelope,
    CloakingAlgorithm,
    DeanonymizationResult,
    LevelRecord,
    LevelRequirement,
    Preassignment,
    PrivacyProfile,
    RegionState,
    ReverseCloakEngine,
    ReversibleGlobalExpansion,
    ReversiblePreassignmentExpansion,
    ToleranceSpec,
    TransitionTable,
    algorithm_for_envelope,
)
from .errors import (
    CloakingError,
    CollisionError,
    DeadlineExceededError,
    DeanonymizationError,
    EnvelopeError,
    FrontierExhaustedError,
    KeyMismatchError,
    MobilityError,
    OverloadedError,
    PreassignmentError,
    ProfileError,
    QueryError,
    ReverseCloakError,
    RoadNetworkError,
    ToleranceExceededError,
    WorkerCrashedError,
)
from .keys import AccessControlProfile, AccessKey, KeyChain, KeyGrant, Requester
from .lbs import (
    AnonymizerService,
    BatchOutcome,
    CloakRequest,
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from .mobility import (
    GaussianPlacement,
    MobilityTrace,
    PopulationSnapshot,
    TrafficSimulator,
    UniformPlacement,
    record_trace,
)
from .roadnet import (
    BoundingBox,
    Point,
    RoadNetwork,
    RoadNetworkBuilder,
    atlanta_like,
    fig1_network,
    fig2_network,
    fig3_network,
    grid_network,
    load_network_json,
    path_network,
    radial_network,
    random_delaunay_network,
    save_network_json,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ReverseCloakEngine",
    "DeanonymizationResult",
    "CloakEnvelope",
    "LevelRecord",
    "CloakingAlgorithm",
    "ReversibleGlobalExpansion",
    "ReversiblePreassignmentExpansion",
    "Preassignment",
    "TransitionTable",
    "PrivacyProfile",
    "LevelRequirement",
    "ToleranceSpec",
    "RegionState",
    "algorithm_for_envelope",
    # serving
    "AnonymizerService",
    "CloakRequest",
    "BatchOutcome",
    "InlineBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    # keys
    "AccessKey",
    "KeyChain",
    "AccessControlProfile",
    "Requester",
    "KeyGrant",
    # mobility
    "TrafficSimulator",
    "PopulationSnapshot",
    "GaussianPlacement",
    "UniformPlacement",
    "MobilityTrace",
    "record_trace",
    # roadnet
    "Point",
    "BoundingBox",
    "RoadNetwork",
    "RoadNetworkBuilder",
    "grid_network",
    "path_network",
    "radial_network",
    "random_delaunay_network",
    "atlanta_like",
    "fig1_network",
    "fig2_network",
    "fig3_network",
    "save_network_json",
    "load_network_json",
    # errors
    "ReverseCloakError",
    "RoadNetworkError",
    "ProfileError",
    "CloakingError",
    "ToleranceExceededError",
    "FrontierExhaustedError",
    "DeanonymizationError",
    "CollisionError",
    "KeyMismatchError",
    "EnvelopeError",
    "PreassignmentError",
    "MobilityError",
    "QueryError",
    "DeadlineExceededError",
    "WorkerCrashedError",
    "OverloadedError",
]
