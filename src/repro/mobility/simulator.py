"""Discrete-time traffic simulator (GTMobiSim substitute, decision D7).

Reproduces the trace model of the paper's toolkit (Section IV): *"There are
10,000 cars randomly generated along the roads based on Gaussian
distribution. Once a car is generated, the associated destination is also
randomly chosen and the route selection is based on shortest path routing."*

Model:

* Cars are placed by a :class:`~repro.mobility.distributions.PlacementDistribution`
  and snapped to the nearest segment.
* Each car draws a random destination junction and follows the shortest path
  (Dijkstra) toward it at an individual constant speed.
* When a car arrives it immediately draws a new destination, so the
  population never drains.
* :meth:`TrafficSimulator.step` advances the whole fleet; a
  :class:`~repro.mobility.snapshot.PopulationSnapshot` can be taken at any
  instant.

Everything is a pure function of the seed, so any experiment's population is
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import MobilityError
from ..roadnet.geometry import Point, point_along
from ..roadnet.graph import RoadNetwork
from ..roadnet.paths import shortest_junction_path
from ..roadnet.spatial_index import SegmentIndex
from .distributions import GaussianPlacement, PlacementDistribution
from .snapshot import PopulationSnapshot

__all__ = ["Car", "TrafficSimulator"]


@dataclass
class Car:
    """A simulated vehicle.

    Attributes:
        car_id: Stable id.
        segment_id: Segment currently occupied.
        offset: Distance in metres travelled along the current segment,
            measured from ``entry_junction``'s end.
        entry_junction: The junction through which the car entered the
            current segment (defines travel direction).
        speed: Metres per second.
        route: Remaining segment ids to traverse after the current one.
        destination: Target junction id.
    """

    car_id: int
    segment_id: int
    offset: float
    entry_junction: int
    speed: float
    route: List[int]
    destination: int

    def position(self, network: RoadNetwork) -> Point:
        """The car's 2-D position interpolated along its segment."""
        segment = network.segment(self.segment_id)
        start = network.junction(self.entry_junction).location
        end = network.junction(segment.other_end(self.entry_junction)).location
        fraction = self.offset / segment.length if segment.length > 0 else 0.0
        return point_along(start, end, fraction)


class TrafficSimulator:
    """Seeded fleet simulation over a road network.

    Args:
        network: The road map (must be connected for routing to succeed;
            cars are only placed on the largest connected component).
        n_cars: Fleet size (the paper uses 10,000).
        seed: RNG seed; the entire evolution is deterministic given it.
        placement: Spatial distribution of initial positions (defaults to
            the paper's Gaussian model).
        speed_range: Uniform range of car speeds in m/s (urban 5-20 m/s).
    """

    def __init__(
        self,
        network: RoadNetwork,
        n_cars: int,
        seed: int = 2017,
        placement: Optional[PlacementDistribution] = None,
        speed_range: Tuple[float, float] = (5.0, 20.0),
    ) -> None:
        if n_cars < 0:
            raise MobilityError(f"n_cars must be non-negative, got {n_cars}")
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise MobilityError(f"invalid speed range: {speed_range}")
        self._network = network
        self._rng = np.random.default_rng(seed)
        self._placement = placement or GaussianPlacement()
        self._speed_range = speed_range
        self._time = 0.0
        self._index = SegmentIndex(network) if network.segment_count else None
        components = network.connected_components()
        self._routable = components[0] if components else frozenset()
        routable_junctions = set()
        for segment_id in self._routable:
            routable_junctions.update(network.segment(segment_id).endpoints())
        self._routable_junctions = tuple(sorted(routable_junctions))
        self._cars: List[Car] = self._spawn_fleet(n_cars)

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def time(self) -> float:
        return self._time

    @property
    def cars(self) -> Tuple[Car, ...]:
        return tuple(self._cars)

    # ------------------------------------------------------------------
    # fleet construction
    # ------------------------------------------------------------------
    def _spawn_fleet(self, n_cars: int) -> List[Car]:
        if n_cars == 0:
            return []
        if not self._routable:
            raise MobilityError("cannot spawn cars on an empty network")
        bounds = self._network.bounding_box()
        points = self._placement.sample(n_cars, bounds, self._rng)
        cars: List[Car] = []
        for car_id, point in enumerate(points):
            segment_id = self._snap_to_routable(point)
            segment = self._network.segment(segment_id)
            offset = float(self._rng.uniform(0.0, segment.length))
            entry = segment.junction_a
            speed = float(self._rng.uniform(*self._speed_range))
            car = Car(
                car_id=car_id,
                segment_id=segment_id,
                offset=offset,
                entry_junction=entry,
                speed=speed,
                route=[],
                destination=segment.junction_b,
            )
            self._assign_new_trip(car)
            cars.append(car)
        return cars

    def _snap_to_routable(self, point: Point) -> int:
        assert self._index is not None
        segment_id = self._index.nearest_segment(point)
        if segment_id in self._routable:
            return segment_id
        # Nearest segment lies on a minor disconnected component; fall back
        # to the closest routable segment by midpoint distance.
        return min(
            self._routable,
            key=lambda sid: (
                self._network.segment_midpoint(sid).distance_to(point),
                sid,
            ),
        )

    def _assign_new_trip(self, car: Car) -> None:
        """Draw a random destination and route the car toward it."""
        segment = self._network.segment(car.segment_id)
        # Head toward whichever endpoint starts the shortest route.
        for __ in range(8):
            destination = int(
                self._routable_junctions[
                    self._rng.integers(0, len(self._routable_junctions))
                ]
            )
            if destination not in segment.endpoints():
                break
        else:
            destination = segment.junction_b
        exit_junction = segment.other_end(car.entry_junction)
        route = shortest_junction_path(self._network, exit_junction, destination)
        car.destination = destination
        car.route = list(route.segments)

    # ------------------------------------------------------------------
    # time evolution
    # ------------------------------------------------------------------
    def step(self, dt: float = 1.0) -> None:
        """Advance the simulation by ``dt`` seconds."""
        if dt <= 0:
            raise MobilityError(f"dt must be positive, got {dt}")
        for car in self._cars:
            self._advance_car(car, car.speed * dt)
        self._time += dt

    def run(self, steps: int, dt: float = 1.0) -> None:
        """Advance ``steps`` times by ``dt`` seconds each."""
        for __ in range(steps):
            self.step(dt)

    def _advance_car(self, car: Car, travel: float) -> None:
        remaining = travel
        # Bounded hops per tick: a car cannot cross more segments than this
        # in one step under sane speeds; guards against pathological maps.
        for __ in range(10_000):
            segment = self._network.segment(car.segment_id)
            to_end = segment.length - car.offset
            if remaining < to_end:
                car.offset += remaining
                return
            remaining -= to_end
            exit_junction = segment.other_end(car.entry_junction)
            if not car.route:
                # Arrived: turn around conceptually by starting a new trip
                # from this junction.
                car.entry_junction = exit_junction
                car.offset = 0.0
                car.entry_junction = exit_junction
                car.segment_id = car.segment_id
                self._start_next_trip_at(car, exit_junction)
                continue
            next_segment_id = car.route.pop(0)
            next_segment = self._network.segment(next_segment_id)
            car.segment_id = next_segment_id
            car.entry_junction = exit_junction
            if exit_junction not in next_segment.endpoints():
                raise MobilityError(
                    f"route discontinuity for car {car.car_id}: junction "
                    f"{exit_junction} not on segment {next_segment_id}"
                )
            car.offset = 0.0
        raise MobilityError(f"car {car.car_id} crossed too many segments in one step")

    def _start_next_trip_at(self, car: Car, junction_id: int) -> None:
        """Begin a fresh trip for an arrived car standing at ``junction_id``."""
        for __ in range(8):
            destination = int(
                self._routable_junctions[
                    self._rng.integers(0, len(self._routable_junctions))
                ]
            )
            if destination != junction_id:
                break
        else:  # pragma: no cover - single-junction maps are rejected earlier
            destination = junction_id
        route = shortest_junction_path(self._network, junction_id, destination)
        if not route.segments:
            # Destination equals origin; stay put this tick.
            car.route = []
            return
        first = route.segments[0]
        car.segment_id = first
        car.entry_junction = junction_id
        car.offset = 0.0
        car.route = list(route.segments[1:])
        car.destination = destination

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def snapshot(self) -> PopulationSnapshot:
        """The current user-to-segment assignment."""
        return PopulationSnapshot(
            {car.car_id: car.segment_id for car in self._cars}, time=self._time
        )

    def car(self, car_id: int) -> Car:
        """The car with ``car_id``."""
        for car in self._cars:
            if car.car_id == car_id:
                return car
        raise MobilityError(f"unknown car id: {car_id}")

    def positions(self) -> Dict[int, Point]:
        """Current 2-D position of every car."""
        return {car.car_id: car.position(self._network) for car in self._cars}
