"""Spatial placement distributions for vehicle generation.

The paper's toolkit generates *"10,000 cars randomly generated along the
roads based on Gaussian distribution"* (Section IV). This module reproduces
that placement model and adds a uniform alternative for ablations:

* :class:`GaussianPlacement` — cars cluster around one or more hot-spots
  (downtown-style density), truncated to the map extent.
* :class:`UniformPlacement` — cars spread evenly over the map extent.

Placements produce raw 2-D points; the simulator snaps each point to the
nearest road segment through a :class:`~repro.roadnet.SegmentIndex`, exactly
like dropping a vehicle onto the closest road.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MobilityError
from ..roadnet.geometry import BoundingBox, Point

__all__ = ["PlacementDistribution", "GaussianPlacement", "UniformPlacement"]


class PlacementDistribution:
    """Interface: draw ``count`` points inside ``bounds`` from a seeded RNG."""

    def sample(
        self, count: int, bounds: BoundingBox, rng: np.random.Generator
    ) -> List[Point]:
        raise NotImplementedError


@dataclass(frozen=True)
class GaussianPlacement(PlacementDistribution):
    """Gaussian hot-spot placement (the paper's model).

    Attributes:
        hotspots: Relative hot-spot centres as ``(fx, fy)`` fractions of the
            map extent, e.g. ``(0.5, 0.5)`` for the map centre. Cars are
            assigned to hot-spots round-robin, giving deterministic
            proportions.
        sigma_fraction: Standard deviation as a fraction of the map diagonal.
    """

    hotspots: Tuple[Tuple[float, float], ...] = ((0.5, 0.5),)
    sigma_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not self.hotspots:
            raise MobilityError("GaussianPlacement needs at least one hotspot")
        if self.sigma_fraction <= 0:
            raise MobilityError(
                f"sigma_fraction must be positive, got {self.sigma_fraction}"
            )

    def sample(
        self, count: int, bounds: BoundingBox, rng: np.random.Generator
    ) -> List[Point]:
        if count < 0:
            raise MobilityError(f"count must be non-negative, got {count}")
        sigma = self.sigma_fraction * bounds.diagonal
        points: List[Point] = []
        for index in range(count):
            fx, fy = self.hotspots[index % len(self.hotspots)]
            cx = bounds.min_x + fx * bounds.width
            cy = bounds.min_y + fy * bounds.height
            # Redraw until inside the map (truncated Gaussian); cap the
            # attempts so a degenerate configuration cannot loop forever.
            for __ in range(64):
                x = rng.normal(cx, sigma)
                y = rng.normal(cy, sigma)
                if bounds.contains(Point(x, y)):
                    break
            else:
                x, y = cx, cy
            points.append(Point(float(x), float(y)))
        return points


@dataclass(frozen=True)
class UniformPlacement(PlacementDistribution):
    """Uniform placement across the map extent (ablation baseline)."""

    def sample(
        self, count: int, bounds: BoundingBox, rng: np.random.Generator
    ) -> List[Point]:
        if count < 0:
            raise MobilityError(f"count must be non-negative, got {count}")
        xs = rng.uniform(bounds.min_x, bounds.max_x, size=count)
        ys = rng.uniform(bounds.min_y, bounds.max_y, size=count)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]
