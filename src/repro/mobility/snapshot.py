"""Per-segment population snapshots consumed by the anonymizer.

The trusted anonymizer needs to know, at cloaking time, how many users
occupy each road segment: location k-anonymity counts users inside the
cloaking region. A :class:`PopulationSnapshot` is the immutable answer to
"who is where, right now" and is the only interface between the mobility
substrate and the cloaking core — experiments can also build synthetic
snapshots directly without running a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import MobilityError

__all__ = ["PopulationSnapshot"]


class PopulationSnapshot:
    """An immutable assignment of users to road segments at one instant.

    Args:
        segment_of: Mapping from user id to the segment the user occupies.
        time: Simulation time of the snapshot, in seconds.
    """

    def __init__(self, segment_of: Mapping[int, int], time: float = 0.0) -> None:
        self._segment_of: Dict[int, int] = dict(segment_of)
        self._time = float(time)
        # The anonymizer only ever needs *counts* (delta_k checks run on
        # every expansion step), so those are precomputed as plain ints;
        # the per-segment user-id tuples are materialised lazily on the
        # first identity query.
        self._counts: Dict[int, int] = {}
        for segment_id in self._segment_of.values():
            self._counts[segment_id] = self._counts.get(segment_id, 0) + 1
        self._users_on: Optional[Dict[int, Tuple[int, ...]]] = None

    def _users_on_map(self) -> Dict[int, Tuple[int, ...]]:
        if self._users_on is None:
            users_on: Dict[int, list] = {}
            for user_id, segment_id in self._segment_of.items():
                users_on.setdefault(segment_id, []).append(user_id)
            self._users_on = {
                segment_id: tuple(sorted(users))
                for segment_id, users in users_on.items()
            }
        return self._users_on

    @classmethod
    def from_counts(cls, counts: Mapping[int, int], time: float = 0.0) -> "PopulationSnapshot":
        """Build a snapshot from per-segment anonymous counts.

        Synthesizes consecutive user ids; convenient for experiments that only
        care about counts, not identities.
        """
        segment_of: Dict[int, int] = {}
        next_user = 0
        for segment_id in sorted(counts):
            count = counts[segment_id]
            if count < 0:
                raise MobilityError(
                    f"segment {segment_id} has negative user count {count}"
                )
            for __ in range(count):
                segment_of[next_user] = segment_id
                next_user += 1
        return cls(segment_of, time=time)

    @property
    def time(self) -> float:
        return self._time

    @property
    def user_count(self) -> int:
        return len(self._segment_of)

    def users(self) -> Tuple[int, ...]:
        """All user ids, ascending."""
        return tuple(sorted(self._segment_of))

    def segment_of(self, user_id: int) -> int:
        """The segment occupied by ``user_id`` (raises if unknown)."""
        try:
            return self._segment_of[user_id]
        except KeyError:
            raise MobilityError(f"unknown user id: {user_id}") from None

    def has_user(self, user_id: int) -> bool:
        return user_id in self._segment_of

    def users_on(self, segment_id: int) -> Tuple[int, ...]:
        """User ids currently on ``segment_id`` (empty tuple when vacant)."""
        return self._users_on_map().get(segment_id, ())

    def count_on(self, segment_id: int) -> int:
        """Number of users on ``segment_id`` (O(1), precomputed)."""
        return self._counts.get(segment_id, 0)

    def count_in_region(self, region: AbstractSet[int]) -> int:
        """Total users on any segment of ``region`` — the quantity compared
        against ``delta_k`` during cloaking."""
        counts = self._counts
        return sum(counts.get(segment_id, 0) for segment_id in region)

    def users_in_region(self, region: AbstractSet[int]) -> Tuple[int, ...]:
        """All user ids inside ``region``, ascending."""
        users_on = self._users_on_map()
        found = []
        for segment_id in region:
            found.extend(users_on.get(segment_id, ()))
        return tuple(sorted(found))

    def occupied_segments(self) -> Tuple[int, ...]:
        """Segments with at least one user, ascending."""
        return tuple(sorted(self._counts))

    def counts(self) -> Dict[int, int]:
        """Per-segment user counts (a fresh dict; safe to mutate)."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PopulationSnapshot(users={self.user_count}, "
            f"occupied_segments={len(self._counts)}, time={self._time})"
        )
