"""Mobility substrate: GTMobiSim-style vehicle generation and traces."""

from .distributions import GaussianPlacement, PlacementDistribution, UniformPlacement
from .simulator import Car, TrafficSimulator
from .snapshot import PopulationSnapshot
from .trace import MobilityTrace, TraceRecord, record_trace

__all__ = [
    "PlacementDistribution",
    "GaussianPlacement",
    "UniformPlacement",
    "Car",
    "TrafficSimulator",
    "PopulationSnapshot",
    "MobilityTrace",
    "TraceRecord",
    "record_trace",
]
