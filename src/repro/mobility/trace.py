"""Mobility trace capture and (de)serialization.

GTMobiSim is fundamentally a *trace generator*: it emits timestamped vehicle
positions that downstream tools replay. This module captures the same
artifact from our simulator — a sequence of per-tick observations — and
persists it as CSV so experiments can decouple expensive simulation from
cloaking runs (generate once, replay many times).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..errors import MobilityError
from .simulator import TrafficSimulator
from .snapshot import PopulationSnapshot

__all__ = ["TraceRecord", "MobilityTrace", "record_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One observation: a car on a segment at a time instant."""

    time: float
    car_id: int
    segment_id: int


class MobilityTrace:
    """An ordered collection of :class:`TraceRecord` with snapshot replay.

    Records are kept sorted by ``(time, car_id)``; :meth:`snapshot_at`
    reconstructs the population at any recorded tick.
    """

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self._records: List[TraceRecord] = sorted(
            records, key=lambda r: (r.time, r.car_id)
        )

    def append(self, record: TraceRecord) -> None:
        """Add a record (must not go backwards in time)."""
        if self._records and record.time < self._records[-1].time:
            raise MobilityError(
                f"trace times must be non-decreasing: {record.time} after "
                f"{self._records[-1].time}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[TraceRecord, ...]:
        return tuple(self._records)

    def times(self) -> Tuple[float, ...]:
        """Distinct observation times, ascending."""
        return tuple(sorted({record.time for record in self._records}))

    def snapshot_at(self, time: float) -> PopulationSnapshot:
        """The population snapshot recorded at exactly ``time``."""
        segment_of: Dict[int, int] = {}
        for record in self._records:
            if record.time == time:
                segment_of[record.car_id] = record.segment_id
        if not segment_of:
            raise MobilityError(f"no trace records at time {time}")
        return PopulationSnapshot(segment_of, time=time)

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as ``time,car_id,segment_id`` rows."""
        with open(Path(path), "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "car_id", "segment_id"])
            for record in self._records:
                writer.writerow([repr(record.time), record.car_id, record.segment_id])

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "MobilityTrace":
        """Load a trace written by :meth:`save_csv`."""
        records = []
        with open(Path(path), newline="") as handle:
            for row in csv.DictReader(handle):
                records.append(
                    TraceRecord(
                        time=float(row["time"]),
                        car_id=int(row["car_id"]),
                        segment_id=int(row["segment_id"]),
                    )
                )
        return cls(records)


def record_trace(
    simulator: TrafficSimulator, steps: int, dt: float = 1.0
) -> MobilityTrace:
    """Run ``simulator`` for ``steps`` ticks, recording every car each tick.

    The initial state (before any step) is recorded too, so the trace holds
    ``steps + 1`` observations per car.
    """
    trace = MobilityTrace()

    def capture() -> None:
        snapshot = simulator.snapshot()
        for user_id in snapshot.users():
            trace.append(
                TraceRecord(
                    time=simulator.time,
                    car_id=user_id,
                    segment_id=snapshot.segment_of(user_id),
                )
            )

    capture()
    for __ in range(steps):
        simulator.step(dt)
        capture()
    return trace
