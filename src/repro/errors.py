"""Exception hierarchy for the ReverseCloak reproduction.

All library-specific errors derive from :class:`ReverseCloakError` so callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish the individual failure modes that the paper's algorithms
exhibit (tolerance exhaustion, reversal collisions, key mismatches, ...).
"""

from __future__ import annotations

from typing import Tuple, Type

__all__ = [
    "WIRE_ERROR_CODES",
    "ReverseCloakError",
    "RoadNetworkError",
    "UnknownSegmentError",
    "UnknownJunctionError",
    "DisconnectedRegionError",
    "ProfileError",
    "CloakingError",
    "ToleranceExceededError",
    "FrontierExhaustedError",
    "DeanonymizationError",
    "CollisionError",
    "KeyMismatchError",
    "EnvelopeError",
    "WireFormatError",
    "PreassignmentError",
    "MobilityError",
    "QueryError",
    "DeadlineExceededError",
    "WorkerCrashedError",
    "OverloadedError",
]


class ReverseCloakError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class RoadNetworkError(ReverseCloakError):
    """Problems with road-network construction or lookups."""


class UnknownSegmentError(RoadNetworkError, KeyError):
    """A segment id was not found in the road network."""

    def __init__(self, segment_id: int) -> None:
        super().__init__(f"unknown segment id: {segment_id}")
        self.segment_id = segment_id


class UnknownJunctionError(RoadNetworkError, KeyError):
    """A junction id was not found in the road network."""

    def __init__(self, junction_id: int) -> None:
        super().__init__(f"unknown junction id: {junction_id}")
        self.junction_id = junction_id


class DisconnectedRegionError(RoadNetworkError):
    """A cloaking region was expected to be connected but is not."""


class ProfileError(ReverseCloakError):
    """An invalid user-defined privacy profile was supplied."""


class CloakingError(ReverseCloakError):
    """Base class for failures during the anonymization (expansion) phase."""


class ToleranceExceededError(CloakingError):
    """The spatial tolerance ``sigma_s`` was reached before the privacy
    requirements (``delta_k``, ``delta_l``) could be satisfied.

    The paper counts these events as cloaking failures; the success-rate
    experiment (E8) measures how often they occur as the tolerance tightens.
    """

    def __init__(self, level: int, detail: str) -> None:
        super().__init__(f"level {level}: spatial tolerance exceeded ({detail})")
        self.level = level
        self.detail = detail


class FrontierExhaustedError(CloakingError):
    """The candidate frontier became empty before the privacy requirements
    were met (the region filled a connected component of the map)."""

    def __init__(self, level: int) -> None:
        super().__init__(f"level {level}: candidate frontier exhausted")
        self.level = level


class DeanonymizationError(ReverseCloakError):
    """Base class for failures during reversal (de-anonymization)."""


class CollisionError(DeanonymizationError):
    """Reversal found zero or multiple consistent hypotheses.

    The paper calls the multiple-hypothesis case the *collision issue*; RGE
    avoids it by rebuilding transition tables on the fly and RPLE by
    collision-free pre-assignment. Search-mode reversal raises this error
    whenever ambiguity survives forward-replay validation (experiment E11
    measures the rate).
    """

    def __init__(self, level: int, hypotheses: int) -> None:
        super().__init__(
            f"level {level}: reversal collision ({hypotheses} consistent hypotheses)"
        )
        self.level = level
        self.hypotheses = hypotheses


class KeyMismatchError(DeanonymizationError):
    """A reversal attempted with a key that fails validation against the
    envelope (wrong key, wrong level, or tampered region)."""


class EnvelopeError(ReverseCloakError):
    """A cloaked-region envelope is malformed or internally inconsistent."""


class WireFormatError(EnvelopeError):
    """A wire document (request, outcome, snapshot, ...) is malformed.

    Raised by the :mod:`repro.lbs.wire` parsers whenever a document fails
    structural validation — wrong format tag, unsupported version, missing
    or mistyped fields. Serving surfaces map it to the structured error
    code ``"malformed_document"`` so transports can reject bad input
    without ever reaching an engine.
    """


class PreassignmentError(ReverseCloakError):
    """RPLE pre-assignment could not build usable transition lists."""


class MobilityError(ReverseCloakError):
    """Problems in the mobility substrate (trip generation, snapshots)."""


class QueryError(ReverseCloakError):
    """Problems during anonymous query processing in the LBS substrate."""


class DeadlineExceededError(CloakingError, DeanonymizationError):
    """A request's cooperative deadline expired before serving finished.

    Deadlines are *cooperative*, not preemptive: workers check them between
    cloak/peel steps, so an in-progress step always completes before the
    error is raised. The class derives both :class:`CloakingError` and
    :class:`DeanonymizationError` because a deadline can expire on either
    serving direction — batch outcomes on both paths carry it in place.
    """


class WorkerCrashedError(CloakingError, DeanonymizationError):
    """A process-pool worker died serving a chunk and every recovery
    attempt (respawn + re-drive, then inline fallback where enabled) was
    exhausted.

    Supervised serving converts worker death into respawn-and-retry, so
    clients only ever see this error when the retry budget ran out and
    inline degradation was disabled. Like :class:`DeadlineExceededError`
    it derives both batch failure families.
    """


class OverloadedError(ReverseCloakError):
    """The service shed this request: admitting it would exceed the
    configured in-flight budget (:class:`~repro.lbs.service.AnonymizerService`
    ``max_inflight``). The caller should back off and retry; nothing was
    executed."""


# ----------------------------------------------------------------------
# wire error-code registry
# ----------------------------------------------------------------------
#: Stable protocol error codes, most-derived exception first. This is the
#: single declaration of every wire code: :mod:`repro.lbs.wire` aliases it
#: as ``ERROR_CODES`` and scans it first-match, so a subclass must appear
#: before every one of its bases (the ``error-registry`` lint rule
#: enforces both properties). The strings are protocol — non-Python
#: clients switch on them — and must never change for an existing class.
WIRE_ERROR_CODES: Tuple[Tuple[Type[ReverseCloakError], str], ...] = (
    (WireFormatError, "malformed_document"),
    # The fault-tolerance codes sit above the cloak/peel families: both
    # DeadlineExceededError and WorkerCrashedError derive CloakingError
    # *and* DeanonymizationError (they can strike either direction), so
    # they must dispatch before either base claims them.
    (DeadlineExceededError, "deadline_exceeded"),
    (WorkerCrashedError, "worker_crashed"),
    (OverloadedError, "overloaded"),
    (ToleranceExceededError, "tolerance_exceeded"),
    (FrontierExhaustedError, "frontier_exhausted"),
    (CollisionError, "reversal_collision"),
    (KeyMismatchError, "key_mismatch"),
    (EnvelopeError, "malformed_envelope"),
    (ProfileError, "invalid_profile"),
    (PreassignmentError, "preassignment_failed"),
    (CloakingError, "cloaking_failed"),
    (DeanonymizationError, "deanonymization_failed"),
    (MobilityError, "mobility_unavailable"),
    (QueryError, "query_failed"),
    (RoadNetworkError, "road_network_error"),
    (ReverseCloakError, "internal_error"),
)
