"""Access keys and per-level key chains.

The paper's multi-level model (Section II.B) associates every privacy level
``L^i`` (``1 <= i <= N-1``) with a shared secret key ``Key^i`` that drives the
anonymization of that level and, symmetrically, its de-anonymization. The
demo GUI offers an "Auto key generation" button; :meth:`KeyChain.generate`
is its programmatic counterpart.

Keys are value objects wrapping raw bytes; they never appear in ``repr`` so
accidental logging does not leak secrets.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ProfileError
from .prf import PrfStream

__all__ = ["AccessKey", "KeyChain"]


@dataclass(frozen=True)
class AccessKey:
    """The shared secret key of one privacy level.

    Attributes:
        level: The privacy level this key anonymizes (1-based; level 0 is the
            un-cloaked user segment and has no key).
        material: The raw secret bytes.
    """

    level: int
    material: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ProfileError(f"access keys exist for levels >= 1, got {self.level}")
        if len(self.material) < 8:
            raise ProfileError("key material must be at least 8 bytes")

    @classmethod
    def generate(cls, level: int) -> "AccessKey":
        """A fresh random 256-bit key for ``level``."""
        # Key minting is the one sanctioned entropy source in this package;
        # every oracle downstream of the minted key is deterministic in it.
        # reprolint: disable=determinism
        return cls(level, secrets.token_bytes(32))

    @classmethod
    def from_passphrase(cls, level: int, passphrase: str) -> "AccessKey":
        """Derive a key deterministically from a passphrase (demo-GUI style
        manual key entry). Uses SHA-256 over a level-tagged encoding."""
        digest = hashlib.sha256(f"reversecloak|{level}|{passphrase}".encode()).digest()
        return cls(level, digest)

    def stream(self, purpose: str = "transitions") -> PrfStream:
        """The PRF stream this key drives for the given ``purpose``.

        Distinct purposes ("transitions", "hints", ...) give independent
        streams, so transition numbers never reuse hint-pad outputs.
        """
        domain = f"reversecloak|level={self.level}|{purpose}".encode()
        return PrfStream(self.material, domain)

    def fingerprint(self) -> str:
        """A short non-secret identifier (first 8 hex chars of SHA-256)."""
        return hashlib.sha256(self.material).hexdigest()[:8]

    def to_dict(self) -> dict:
        """A JSON-round-trippable document of this key.

        The document contains the raw secret material (hex) — it is the
        wire form used *inside* the trusted perimeter (anonymizer workers,
        key-grant delivery), never something to publish alongside an
        envelope.
        """
        return {"level": self.level, "material": self.material.hex()}

    @classmethod
    def from_dict(cls, document: dict) -> "AccessKey":
        """Rebuild a key from :meth:`to_dict` output."""
        if not isinstance(document, dict):
            raise ProfileError(f"access-key document must be a dict, got {type(document).__name__}")
        try:
            level = int(document["level"])
            material = bytes.fromhex(document["material"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed access-key document: {exc}") from None
        return cls(level, material)

    def __repr__(self) -> str:
        return f"AccessKey(level={self.level}, fingerprint={self.fingerprint()!r})"


class KeyChain:
    """The ordered collection of level keys of one anonymization.

    A chain for ``N`` privacy levels holds keys for levels ``1..N-1``
    (level 0 needs none). The anonymizer holds the full chain; requesters are
    granted suffixes of it — holding ``Key^j..Key^{N-1}`` lets them peel the
    cloak down to level ``j-1`` (paper Section II.B).
    """

    def __init__(self, keys: Iterable[AccessKey]) -> None:
        ordered = sorted(keys, key=lambda k: k.level)
        if not ordered:
            raise ProfileError("a key chain needs at least one key")
        expected = list(range(1, len(ordered) + 1))
        if [k.level for k in ordered] != expected:
            raise ProfileError(
                f"key levels must be exactly 1..{len(ordered)}, got "
                f"{[k.level for k in ordered]}"
            )
        self._keys: Dict[int, AccessKey] = {k.level: k for k in ordered}

    @classmethod
    def generate(cls, levels: int) -> "KeyChain":
        """Auto-generate keys for ``levels`` anonymization levels
        (the demo GUI's "Auto key generation")."""
        if levels < 1:
            raise ProfileError(f"need at least one level, got {levels}")
        return cls(AccessKey.generate(level) for level in range(1, levels + 1))

    @classmethod
    def from_passphrases(cls, passphrases: Iterable[str]) -> "KeyChain":
        """Derive a chain from one passphrase per level, in level order."""
        return cls(
            AccessKey.from_passphrase(level, phrase)
            for level, phrase in enumerate(passphrases, start=1)
        )

    @property
    def levels(self) -> int:
        """Number of keyed levels in the chain."""
        return len(self._keys)

    def key_for(self, level: int) -> AccessKey:
        """The key of ``level`` (raises :class:`ProfileError` if absent)."""
        try:
            return self._keys[level]
        except KeyError:
            raise ProfileError(
                f"no key for level {level} (chain has levels 1..{self.levels})"
            ) from None

    def has_level(self, level: int) -> bool:
        return level in self._keys

    def suffix(self, from_level: int) -> Tuple[AccessKey, ...]:
        """Keys for levels ``from_level..top`` — the grant needed to peel the
        cloak down to level ``from_level - 1``."""
        if not 1 <= from_level <= self.levels:
            raise ProfileError(
                f"from_level must be in 1..{self.levels}, got {from_level}"
            )
        return tuple(self._keys[level] for level in range(from_level, self.levels + 1))

    def to_hex_list(self) -> List[str]:
        """Key material as hex strings, level 1 first (for key files).

        The output is secret — write it only where the data owner's
        'Anonymizer' would store its managed keys.
        """
        return [self._keys[level].material.hex() for level in sorted(self._keys)]

    @classmethod
    def from_hex_list(cls, materials: Iterable[str]) -> "KeyChain":
        """Rebuild a chain from :meth:`to_hex_list` output."""
        return cls(
            AccessKey(level, bytes.fromhex(material))
            for level, material in enumerate(materials, start=1)
        )

    def to_dict(self) -> dict:
        """A JSON-round-trippable document of the whole chain (secret —
        same caveat as :meth:`AccessKey.to_dict`)."""
        return {"keys": [self._keys[level].to_dict() for level in sorted(self._keys)]}

    @classmethod
    def from_dict(cls, document: dict) -> "KeyChain":
        """Rebuild a chain from :meth:`to_dict` output."""
        if not isinstance(document, dict) or not isinstance(document.get("keys"), list):
            raise ProfileError("malformed key-chain document: expected {'keys': [...]}")
        return cls(AccessKey.from_dict(item) for item in document["keys"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyChain):
            return NotImplemented
        return self._keys == other._keys

    def __hash__(self) -> int:
        return hash(tuple(self._keys[level] for level in sorted(self._keys)))

    def __iter__(self) -> Iterator[AccessKey]:
        return iter(self._keys[level] for level in sorted(self._keys))

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        prints = ", ".join(self._keys[level].fingerprint() for level in sorted(self._keys))
        return f"KeyChain(levels={self.levels}, fingerprints=[{prints}])"


def partial_chain(chain: KeyChain, granted_levels: Iterable[int]) -> Dict[int, AccessKey]:
    """The key subset a requester holds, as ``{level: key}``.

    Helper for access-control code; validates the levels exist.
    """
    grant: Dict[int, AccessKey] = {}
    for level in granted_levels:
        grant[level] = chain.key_for(level)
    return grant
