"""Personal access-control profiles for key distribution.

Paper, Section IV: *"The 'Anonymizer' maintains a personal access control
profile, which decides the assignment of access keys based on trust degree
and privileges of the location data requesters."*

This module models that profile: the data owner registers requesters with a
trust degree, maps trust degrees to privilege levels, and the profile answers
key-fetch requests with exactly the suffix of the key chain the requester is
entitled to. Holding keys ``Key^j..Key^{N-1}`` allows peeling down to level
``j-1``; an unknown or untrusted requester receives no keys and sees only the
outermost cloaking region, like the LBS provider itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ProfileError
from .keys import AccessKey, KeyChain

__all__ = ["Requester", "AccessControlProfile", "KeyGrant"]


@dataclass(frozen=True)
class Requester:
    """A location data requester known to the data owner.

    Attributes:
        requester_id: Stable identifier (e.g. an account name).
        trust_degree: Non-negative trust score assigned by the owner; higher
            means more trusted.
    """

    requester_id: str
    trust_degree: int

    def __post_init__(self) -> None:
        if not self.requester_id:
            raise ProfileError("requester_id must be non-empty")
        if self.trust_degree < 0:
            raise ProfileError(f"trust_degree must be >= 0, got {self.trust_degree}")


@dataclass(frozen=True)
class KeyGrant:
    """The outcome of a key-fetch request.

    Attributes:
        requester_id: Who asked.
        access_level: The lowest privacy level the grant can expose
            (``N-1`` = outermost only, ``0`` = exact user segment).
        keys: The granted keys, outermost level last.
    """

    requester_id: str
    access_level: int
    keys: Tuple[AccessKey, ...]

    @property
    def key_levels(self) -> Tuple[int, ...]:
        return tuple(key.level for key in self.keys)

    def to_dict(self) -> dict:
        """A JSON-round-trippable document of the grant (contains the
        granted key material — deliver only to the vetted requester)."""
        return {
            "requester_id": self.requester_id,
            "access_level": self.access_level,
            "keys": [key.to_dict() for key in self.keys],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "KeyGrant":
        """Rebuild a grant from :meth:`to_dict` output."""
        if not isinstance(document, dict):
            raise ProfileError(f"key-grant document must be a dict, got {type(document).__name__}")
        try:
            requester_id = str(document["requester_id"])
            access_level = int(document["access_level"])
            keys = tuple(AccessKey.from_dict(item) for item in document["keys"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed key-grant document: {exc}") from None
        return cls(requester_id=requester_id, access_level=access_level, keys=keys)


class AccessControlProfile:
    """Maps requester trust degrees to privilege levels and key grants.

    The owner configures *trust thresholds*: ``thresholds[i]`` is the minimum
    trust degree required to access privacy level ``i`` (i.e. to receive keys
    ``Key^{i+1}..Key^{top}``). Thresholds must be non-increasing in exposed
    privacy — reaching a finer level requires at least as much trust as any
    coarser one.

    Example:
        >>> chain = KeyChain.from_passphrases(["a", "b", "c"])
        >>> profile = AccessControlProfile(chain, {2: 10, 1: 50, 0: 90})
        >>> profile.register(Requester("friend", trust_degree=60))
        >>> profile.fetch_keys("friend").access_level
        1
    """

    def __init__(self, chain: KeyChain, thresholds: Dict[int, int]) -> None:
        self._chain = chain
        top = chain.levels
        for level in thresholds:
            if not 0 <= level < top:
                raise ProfileError(
                    f"threshold level {level} outside 0..{top - 1} "
                    f"(level {top} is public)"
                )
        ordered = sorted(thresholds.items())  # by exposed level, finest first
        for (fine_level, fine_trust), (coarse_level, coarse_trust) in zip(
            ordered, ordered[1:]
        ):
            if fine_trust < coarse_trust:
                raise ProfileError(
                    f"finer level {fine_level} requires less trust "
                    f"({fine_trust}) than coarser level {coarse_level} "
                    f"({coarse_trust})"
                )
        self._thresholds = dict(thresholds)
        self._requesters: Dict[str, Requester] = {}

    @property
    def chain(self) -> KeyChain:
        return self._chain

    def register(self, requester: Requester) -> None:
        """Add or update a requester in the profile."""
        self._requesters[requester.requester_id] = requester

    def remove(self, requester_id: str) -> None:
        """Forget a requester (subsequent fetches get no keys)."""
        self._requesters.pop(requester_id, None)

    def known_requesters(self) -> Tuple[str, ...]:
        return tuple(sorted(self._requesters))

    def access_level_for(self, requester_id: str) -> int:
        """The lowest privacy level ``requester_id`` may expose.

        Unknown requesters get the outermost level (``chain.levels``), i.e.
        no de-anonymization capability at all.
        """
        requester = self._requesters.get(requester_id)
        if requester is None:
            return self._chain.levels
        best = self._chain.levels
        for level, needed in sorted(self._thresholds.items()):
            if requester.trust_degree >= needed:
                best = min(best, level)
                break
        return best

    def fetch_keys(self, requester_id: str) -> KeyGrant:
        """Answer a key-fetch request per the profile.

        Returns the keys for levels ``access_level+1 .. top`` (possibly none).
        """
        access_level = self.access_level_for(requester_id)
        if access_level >= self._chain.levels:
            keys: Tuple[AccessKey, ...] = ()
        else:
            keys = self._chain.suffix(access_level + 1)
        return KeyGrant(requester_id=requester_id, access_level=access_level, keys=keys)
