"""Key management: PRF streams, level keys, chains, access-control profiles."""

from .access_control import AccessControlProfile, KeyGrant, Requester
from .keys import AccessKey, KeyChain
from .prf import (
    PrfBlock,
    PrfDrawer,
    PrfStream,
    derive_pad,
    keyed_digest,
    keyed_digest_block,
    prf_block,
    prf_value,
    purge_keyed_hmac_cache,
)

__all__ = [
    "PrfStream",
    "PrfBlock",
    "PrfDrawer",
    "prf_value",
    "prf_block",
    "keyed_digest",
    "keyed_digest_block",
    "purge_keyed_hmac_cache",
    "derive_pad",
    "AccessKey",
    "KeyChain",
    "Requester",
    "AccessControlProfile",
    "KeyGrant",
]
