"""Key management: PRF streams, level keys, chains, access-control profiles."""

from .access_control import AccessControlProfile, KeyGrant, Requester
from .keys import AccessKey, KeyChain
from .prf import PrfStream, derive_pad, prf_value

__all__ = [
    "PrfStream",
    "prf_value",
    "derive_pad",
    "AccessKey",
    "KeyChain",
    "Requester",
    "AccessControlProfile",
    "KeyGrant",
]
