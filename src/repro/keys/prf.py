"""Keyed pseudo-random functions driving reversible cloaking.

The paper (Section III): *"the secret key is used to generate a sequence of
pseudo-random numbers and each pseudo-random number controls the selection of
one transition. The i-th pseudo-random number R_i is responsible for both the
i-th forward transition and the (n-i)-th backward transition."*

We realise the sequence as an HMAC-SHA256 PRF (decision D3 in DESIGN.md):

    R_i = int.from_bytes(HMAC(key, domain || uint64(i)))

which gives both sides of the protocol an identical, cryptographically strong
stream that is infeasible to predict without the key — exactly the property
the paper's security argument relies on ("without the secret key, the cloaked
region preserves strong privacy properties ... even when the adversary has
complete knowledge about the location perturbation algorithm").
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterator

__all__ = ["PrfStream", "prf_value", "derive_pad"]

_DIGEST_BYTES = hashlib.sha256().digest_size


def prf_value(key: bytes, domain: bytes, index: int) -> int:
    """The ``index``-th PRF output for ``key`` in the given ``domain``.

    Values are 256-bit non-negative integers. ``domain`` separates independent
    streams derived from the same key (e.g. transition selection vs. hint
    sealing) so reuse of one stream leaks nothing about another.
    """
    if index < 0:
        raise ValueError(f"PRF index must be non-negative, got {index}")
    message = domain + index.to_bytes(8, "big")
    digest = hmac.new(key, message, hashlib.sha256).digest()
    return int.from_bytes(digest, "big")


def derive_pad(key: bytes, domain: bytes, width_bytes: int = 8) -> bytes:
    """A key-derived pad of ``width_bytes`` bytes for XOR-sealing small values.

    Used by the sealed-hint envelope mode (decision D1): the last-added
    segment id of a level is XOR-masked with this pad, recoverable only with
    the level key.
    """
    if width_bytes <= 0 or width_bytes > _DIGEST_BYTES:
        raise ValueError(f"width_bytes must be in 1..{_DIGEST_BYTES}")
    digest = hmac.new(key, domain + b"|pad", hashlib.sha256).digest()
    return digest[:width_bytes]


class PrfStream:
    """A sequential view over the PRF stream of one (key, domain) pair.

    Both anonymization (forward) and de-anonymization (backward) construct a
    stream with the same key and domain; the backward side may also jump to an
    absolute index via :meth:`value_at` since the i-th number drives both the
    i-th forward and the corresponding backward transition.

    Example:
        >>> stream = PrfStream(b"secret", domain=b"level-1")
        >>> first = stream.next_value()
        >>> stream.value_at(0) == first
        True
    """

    def __init__(self, key: bytes, domain: bytes = b"reversecloak") -> None:
        if not key:
            raise ValueError("PRF key must be non-empty")
        self._key = bytes(key)
        self._domain = bytes(domain)
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Index of the next value :meth:`next_value` will return."""
        return self._cursor

    @property
    def domain(self) -> bytes:
        return self._domain

    def next_value(self) -> int:
        """Consume and return the next stream value."""
        value = prf_value(self._key, self._domain, self._cursor)
        self._cursor += 1
        return value

    def value_at(self, index: int) -> int:
        """Random access to the ``index``-th value (cursor unchanged)."""
        return prf_value(self._key, self._domain, index)

    def values(self, count: int, start: int = 0) -> Iterator[int]:
        """Iterate ``count`` values starting at absolute index ``start``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for index in range(start, start + count):
            yield prf_value(self._key, self._domain, index)

    def reset(self) -> None:
        """Rewind the cursor to the beginning of the stream."""
        self._cursor = 0

    def fork(self, subdomain: bytes) -> "PrfStream":
        """An independent stream in a derived domain, sharing the key."""
        return PrfStream(self._key, self._domain + b"/" + subdomain)
