"""Keyed pseudo-random functions driving reversible cloaking.

The paper (Section III): *"the secret key is used to generate a sequence of
pseudo-random numbers and each pseudo-random number controls the selection of
one transition. The i-th pseudo-random number R_i is responsible for both the
i-th forward transition and the (n-i)-th backward transition."*

We realise the sequence as an HMAC-SHA256 PRF (decision D3 in DESIGN.md):

    R_i = int.from_bytes(HMAC(key, domain || uint64(i)))

which gives both sides of the protocol an identical, cryptographically strong
stream that is infeasible to predict without the key — exactly the property
the paper's security argument relies on ("without the secret key, the cloaked
region preserves strong privacy properties ... even when the adversary has
complete knowledge about the location perturbation algorithm").

Two call planes are exposed, byte-identical by construction:

* **per-call** — :func:`prf_value` / :func:`keyed_digest`, one HMAC per
  invocation (the seed-era path, kept as the equivalence baseline);
* **batched** — :func:`prf_block` / :func:`keyed_digest_block` draw many
  outputs in one tight loop over the cached keyed pad states, and
  :class:`PrfBlock` / :meth:`PrfStream.next_block` buffer whole windows of a
  stream. Expansion draws a level's worth of ``R_i`` up front through this
  plane instead of paying the per-call overhead once per transition.

Both planes run HMAC manually from two cached SHA-256 pad states per key
(the ``key ^ ipad`` / ``key ^ opad`` absorbed prefixes of the HMAC
construction). ``hmac.new(key, ...)`` re-absorbs the padded key and wraps
every digest in Python-level object plumbing; resuming copied pad states
produces the exact same bytes at roughly half the cost per call, and the
batched loop amortises the remaining per-call bookkeeping as well. A
one-shot :func:`hmac.digest` fast path is deliberately *not* used: measured
against the cached-state loop it is slower on CPython's OpenSSL backend
(one-shot re-keys per message).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Iterable, Iterator, List, Tuple

__all__ = [
    "PrfStream",
    "PrfBlock",
    "PrfDrawer",
    "prf_value",
    "prf_block",
    "keyed_digest",
    "keyed_digest_block",
    "derive_pad",
    "purge_keyed_hmac_cache",
]

_DIGEST_BYTES = hashlib.sha256().digest_size
_SHA256_BLOCK_BYTES = 64

# The builtin (non-OpenSSL) SHA-256 has lower per-call overhead for the
# short messages the PRF hashes; digests are identical either way.
try:
    from _sha256 import sha256 as _sha256
except ImportError:  # pragma: no cover - every CPython we target has it
    _sha256 = hashlib.sha256


class _KeyedHmacState:
    """The absorbed HMAC-SHA256 pad states of one key.

    HMAC(key, m) = H(key ^ opad || H(key ^ ipad || m)). Both pad prefixes
    are a pure function of the key, so they are hashed once here and every
    digest resumes ``copy()``-ies of the two states — bit-identical to
    ``hmac.new(key, m, sha256)`` (keys longer than the SHA-256 block are
    pre-hashed exactly as the HMAC spec requires).
    """

    __slots__ = ("inner", "outer")

    def __init__(self, key: bytes) -> None:
        if len(key) > _SHA256_BLOCK_BYTES:
            key = _sha256(key).digest()
        padded = key.ljust(_SHA256_BLOCK_BYTES, b"\x00")
        self.inner = _sha256(bytes(b ^ 0x36 for b in padded))
        self.outer = _sha256(bytes(b ^ 0x5C for b in padded))

    def digest(self, message: bytes) -> bytes:
        ih = self.inner.copy()
        ih.update(message)
        oh = self.outer.copy()
        oh.update(ih.digest())
        return oh.digest()


#: Keyed-HMAC pad-state memo with LRU eviction. Deriving the pad states
#: pays two SHA-256 compressions per key; caching them halves the cost of
#: every PRF call on the expansion hot path, and LRU eviction (rather than
#: the former wholesale clear at capacity) keeps a service that rotates
#: keys across many concurrent users at a near-perfect hit rate as long as
#: the working set fits.
#:
#: Key-hygiene trade-off: entries hold key-derived hash state (and the key
#: bytes as dict keys) beyond the lifetime of the AccessKey that supplied
#: them. Entries are small (~two SHA-256 states each) and evicted
#: least-recently-used past the cap; :func:`purge_keyed_hmac_cache` drops
#: everything — long-running services that retire keys should call it on
#: rotation.
_KEYED_HMAC_CACHE: "OrderedDict[bytes, _KeyedHmacState]" = OrderedDict()
_KEYED_HMAC_CACHE_CAP = 128
_KEYED_HMAC_CACHE_LOCK = threading.Lock()


def _keyed_state(key: bytes) -> _KeyedHmacState:
    with _KEYED_HMAC_CACHE_LOCK:
        state = _KEYED_HMAC_CACHE.get(key)
        if state is not None:
            _KEYED_HMAC_CACHE.move_to_end(key)
            return state
    # Build outside the lock; a concurrent duplicate build is wasted work,
    # never wrong — the states are a pure function of the key.
    state = _KeyedHmacState(key)
    with _KEYED_HMAC_CACHE_LOCK:
        existing = _KEYED_HMAC_CACHE.get(key)
        if existing is not None:
            _KEYED_HMAC_CACHE.move_to_end(key)
            return existing
        _KEYED_HMAC_CACHE[key] = state
        while len(_KEYED_HMAC_CACHE) > _KEYED_HMAC_CACHE_CAP:
            _KEYED_HMAC_CACHE.popitem(last=False)
    return state


def purge_keyed_hmac_cache() -> None:
    """Drop every cached keyed-HMAC pad state (see the key-hygiene note)."""
    with _KEYED_HMAC_CACHE_LOCK:
        _KEYED_HMAC_CACHE.clear()


def keyed_digest(key: bytes, message: bytes) -> bytes:
    """``HMAC-SHA256(key, message)`` via the keyed pad-state cache.

    Exactly ``hmac.new(key, message, hashlib.sha256).digest()``, minus the
    per-call key-absorption and HMAC-object cost.
    """
    return _keyed_state(key).digest(message)


def keyed_digest_block(key: bytes, messages: Iterable[bytes]) -> List[bytes]:
    """``HMAC-SHA256(key, m)`` for every ``m`` in one tight loop.

    Byte-identical to mapping :func:`keyed_digest`, with the cache lookup,
    lock and attribute traffic hoisted out of the loop.
    """
    state = _keyed_state(key)
    icopy = state.inner.copy
    ocopy = state.outer.copy
    out: List[bytes] = []
    append = out.append
    for message in messages:
        ih = icopy()
        ih.update(message)
        oh = ocopy()
        oh.update(ih.digest())
        append(oh.digest())
    return out


def prf_value(key: bytes, domain: bytes, index: int) -> int:
    """The ``index``-th PRF output for ``key`` in the given ``domain``.

    Values are 256-bit non-negative integers. ``domain`` separates independent
    streams derived from the same key (e.g. transition selection vs. hint
    sealing) so reuse of one stream leaks nothing about another.
    """
    if index < 0:
        raise ValueError(f"PRF index must be non-negative, got {index}")
    message = domain + index.to_bytes(8, "big")
    return int.from_bytes(keyed_digest(key, message), "big")


class PrfDrawer:
    """A (key, domain) PRF stream with the keyed states resolved once.

    Binding resolves the keyed pad states (one cache hit) and absorbs the
    ``domain`` prefix into the inner state a single time, so every
    subsequent draw — single or block — hashes only its 8 index bytes on
    top of the resumed states. Byte-identical to :func:`prf_value` /
    :func:`prf_block`; the hot expansion loops hold one drawer per level
    instead of re-resolving the key on every call.
    """

    __slots__ = ("_inner_dom", "_outer")

    def __init__(self, key: bytes, domain: bytes) -> None:
        state = _keyed_state(key)
        self._inner_dom = state.inner.copy()
        self._inner_dom.update(domain)
        self._outer = state.outer

    def value(self, index: int) -> int:
        """The ``index``-th stream value (same bytes as :func:`prf_value`)."""
        if index < 0:
            raise ValueError(f"PRF index must be non-negative, got {index}")
        ih = self._inner_dom.copy()
        ih.update(index.to_bytes(8, "big"))
        oh = self._outer.copy()
        oh.update(ih.digest())
        return int.from_bytes(oh.digest(), "big")

    def block(self, indices: Iterable[int]) -> Tuple[int, ...]:
        """Stream values for many ``indices`` in one tight loop."""
        icopy = self._inner_dom.copy
        ocopy = self._outer.copy
        from_bytes = int.from_bytes
        out: List[int] = []
        append = out.append
        for index in indices:
            if index < 0:
                raise ValueError(f"PRF index must be non-negative, got {index}")
            ih = icopy()
            ih.update(index.to_bytes(8, "big"))
            oh = ocopy()
            oh.update(ih.digest())
            append(from_bytes(oh.digest(), "big"))
        return tuple(out)


def prf_block(key: bytes, domain: bytes, indices: Iterable[int]) -> Tuple[int, ...]:
    """PRF outputs for many ``indices`` of one ``(key, domain)`` stream.

    Byte-identical to ``tuple(prf_value(key, domain, i) for i in indices)``,
    drawn in one tight :class:`PrfDrawer` loop. This is the primitive behind
    every block pre-draw in the expansion hot path.
    """
    return PrfDrawer(key, domain).block(indices)


def derive_pad(key: bytes, domain: bytes, width_bytes: int = 8) -> bytes:
    """A key-derived pad of ``width_bytes`` bytes for XOR-sealing small values.

    Used by the sealed-hint envelope mode (decision D1): the last-added
    segment id of a level is XOR-masked with this pad, recoverable only with
    the level key.
    """
    if width_bytes <= 0 or width_bytes > _DIGEST_BYTES:
        raise ValueError(f"width_bytes must be in 1..{_DIGEST_BYTES}")
    return keyed_digest(key, domain + b"|pad")[:width_bytes]


class PrfBlock:
    """A pre-drawn window ``[start, start + count)`` of one PRF stream.

    The block draws its whole window in one :func:`prf_block` loop at
    construction; :meth:`value_at` then serves in-window indices from the
    buffer in O(1) and transparently falls back to :func:`prf_value` for
    indices outside it, so callers can treat a block as a faster view of
    the same stream.
    """

    __slots__ = ("_key", "_domain", "_start", "_values")

    def __init__(self, key: bytes, domain: bytes, start: int, count: int) -> None:
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._key = bytes(key)
        self._domain = bytes(domain)
        self._start = start
        self._values = prf_block(key, domain, range(start, start + count))

    @property
    def start(self) -> int:
        """First absolute stream index the buffer covers."""
        return self._start

    @property
    def stop(self) -> int:
        """One past the last buffered absolute index."""
        return self._start + len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def covers(self, index: int) -> bool:
        """Whether ``index`` is inside the buffered window."""
        return self._start <= index < self.stop

    def value_at(self, index: int) -> int:
        """The stream value at absolute ``index`` (buffered or computed)."""
        if self.covers(index):
            return self._values[index - self._start]
        return prf_value(self._key, self._domain, index)


class PrfStream:
    """A sequential view over the PRF stream of one (key, domain) pair.

    Both anonymization (forward) and de-anonymization (backward) construct a
    stream with the same key and domain; the backward side may also jump to an
    absolute index via :meth:`value_at` since the i-th number drives both the
    i-th forward and the corresponding backward transition. Consumers that
    know (or can bound) how many values they need should draw them through
    :meth:`next_block` / :meth:`block` — one tight loop instead of one HMAC
    call per value, same bytes.

    Example:
        >>> stream = PrfStream(b"secret", domain=b"level-1")
        >>> first = stream.next_value()
        >>> stream.value_at(0) == first
        True
    """

    def __init__(self, key: bytes, domain: bytes = b"reversecloak") -> None:
        if not key:
            raise ValueError("PRF key must be non-empty")
        self._key = bytes(key)
        self._domain = bytes(domain)
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Index of the next value :meth:`next_value` will return."""
        return self._cursor

    @property
    def domain(self) -> bytes:
        return self._domain

    def next_value(self) -> int:
        """Consume and return the next stream value."""
        value = prf_value(self._key, self._domain, self._cursor)
        self._cursor += 1
        return value

    def next_block(self, count: int) -> Tuple[int, ...]:
        """Consume and return the next ``count`` values in one batched draw.

        Equivalent to ``count`` :meth:`next_value` calls (same values, same
        cursor advance) at block-draw cost.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        values = prf_block(
            self._key, self._domain, range(self._cursor, self._cursor + count)
        )
        self._cursor += count
        return values

    def block(self, count: int, start: "int | None" = None) -> PrfBlock:
        """A :class:`PrfBlock` buffer over ``[start, start + count)``.

        ``start`` defaults to the current cursor; the cursor is unchanged
        (blocks are random-access views, not consumers).
        """
        begin = self._cursor if start is None else start
        return PrfBlock(self._key, self._domain, begin, count)

    def value_at(self, index: int) -> int:
        """Random access to the ``index``-th value (cursor unchanged)."""
        return prf_value(self._key, self._domain, index)

    def values(self, count: int, start: int = 0) -> Iterator[int]:
        """Iterate ``count`` values starting at absolute index ``start``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for index in range(start, start + count):
            yield prf_value(self._key, self._domain, index)

    def reset(self) -> None:
        """Rewind the cursor to the beginning of the stream."""
        self._cursor = 0

    def fork(self, subdomain: bytes) -> "PrfStream":
        """An independent stream in a derived domain, sharing the key.

        Forked subdomains are length-prefixed —
        ``domain || b"/" || uint32(len(subdomain)) || subdomain`` — so the
        encoding of a fork chain is injective: ``fork(b"a/b")`` and
        ``fork(b"a").fork(b"b")`` occupy distinct domains (under the former
        bare ``b"/"`` join they collided). Unforked streams are unaffected,
        so envelopes (whose domains never pass through ``fork``) are
        byte-for-byte unchanged.
        """
        return PrfStream(
            self._key,
            self._domain + b"/" + len(subdomain).to_bytes(4, "big") + subdomain,
        )
