"""Keyed pseudo-random functions driving reversible cloaking.

The paper (Section III): *"the secret key is used to generate a sequence of
pseudo-random numbers and each pseudo-random number controls the selection of
one transition. The i-th pseudo-random number R_i is responsible for both the
i-th forward transition and the (n-i)-th backward transition."*

We realise the sequence as an HMAC-SHA256 PRF (decision D3 in DESIGN.md):

    R_i = int.from_bytes(HMAC(key, domain || uint64(i)))

which gives both sides of the protocol an identical, cryptographically strong
stream that is infeasible to predict without the key — exactly the property
the paper's security argument relies on ("without the secret key, the cloaked
region preserves strong privacy properties ... even when the adversary has
complete knowledge about the location perturbation algorithm").
"""

from __future__ import annotations

import hashlib
import hmac
import threading
from typing import Dict, Iterator

__all__ = [
    "PrfStream",
    "prf_value",
    "keyed_digest",
    "derive_pad",
    "purge_keyed_hmac_cache",
]

_DIGEST_BYTES = hashlib.sha256().digest_size

#: Keyed-HMAC template memo. ``hmac.new(key, ...)`` pays two SHA-256
#: compressions just to absorb the padded key; caching the absorbed state
#: per key and ``copy()``-ing it per message halves the cost of every PRF
#: call on the expansion hot path. Outputs are bit-identical — ``copy()``
#: resumes the exact same HMAC state.
#:
#: Key-hygiene trade-off: entries hold key-derived HMAC state (and the key
#: bytes as dict keys) beyond the lifetime of the AccessKey that supplied
#: them. The cache is small (16 entries, evicted wholesale) and
#: :func:`purge_keyed_hmac_cache` drops everything — long-running services
#: that rotate keys should call it on rotation.
_KEYED_HMAC_CACHE: Dict[bytes, "hmac.HMAC"] = {}
_KEYED_HMAC_CACHE_CAP = 16
_KEYED_HMAC_CACHE_LOCK = threading.Lock()


def _keyed_hmac(key: bytes) -> "hmac.HMAC":
    with _KEYED_HMAC_CACHE_LOCK:
        template = _KEYED_HMAC_CACHE.get(key)
        if template is None:
            template = hmac.new(key, digestmod=hashlib.sha256)
            if len(_KEYED_HMAC_CACHE) >= _KEYED_HMAC_CACHE_CAP:
                _KEYED_HMAC_CACHE.clear()
            _KEYED_HMAC_CACHE[key] = template
        return template.copy()


def purge_keyed_hmac_cache() -> None:
    """Drop every cached keyed-HMAC template (see the key-hygiene note)."""
    with _KEYED_HMAC_CACHE_LOCK:
        _KEYED_HMAC_CACHE.clear()


def keyed_digest(key: bytes, message: bytes) -> bytes:
    """``HMAC-SHA256(key, message)`` via the keyed-template cache.

    Exactly ``hmac.new(key, message, hashlib.sha256).digest()``, minus the
    per-call key-absorption cost.
    """
    mac = _keyed_hmac(key)
    mac.update(message)
    return mac.digest()


def prf_value(key: bytes, domain: bytes, index: int) -> int:
    """The ``index``-th PRF output for ``key`` in the given ``domain``.

    Values are 256-bit non-negative integers. ``domain`` separates independent
    streams derived from the same key (e.g. transition selection vs. hint
    sealing) so reuse of one stream leaks nothing about another.
    """
    if index < 0:
        raise ValueError(f"PRF index must be non-negative, got {index}")
    message = domain + index.to_bytes(8, "big")
    return int.from_bytes(keyed_digest(key, message), "big")


def derive_pad(key: bytes, domain: bytes, width_bytes: int = 8) -> bytes:
    """A key-derived pad of ``width_bytes`` bytes for XOR-sealing small values.

    Used by the sealed-hint envelope mode (decision D1): the last-added
    segment id of a level is XOR-masked with this pad, recoverable only with
    the level key.
    """
    if width_bytes <= 0 or width_bytes > _DIGEST_BYTES:
        raise ValueError(f"width_bytes must be in 1..{_DIGEST_BYTES}")
    return keyed_digest(key, domain + b"|pad")[:width_bytes]


class PrfStream:
    """A sequential view over the PRF stream of one (key, domain) pair.

    Both anonymization (forward) and de-anonymization (backward) construct a
    stream with the same key and domain; the backward side may also jump to an
    absolute index via :meth:`value_at` since the i-th number drives both the
    i-th forward and the corresponding backward transition.

    Example:
        >>> stream = PrfStream(b"secret", domain=b"level-1")
        >>> first = stream.next_value()
        >>> stream.value_at(0) == first
        True
    """

    def __init__(self, key: bytes, domain: bytes = b"reversecloak") -> None:
        if not key:
            raise ValueError("PRF key must be non-empty")
        self._key = bytes(key)
        self._domain = bytes(domain)
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Index of the next value :meth:`next_value` will return."""
        return self._cursor

    @property
    def domain(self) -> bytes:
        return self._domain

    def next_value(self) -> int:
        """Consume and return the next stream value."""
        value = prf_value(self._key, self._domain, self._cursor)
        self._cursor += 1
        return value

    def value_at(self, index: int) -> int:
        """Random access to the ``index``-th value (cursor unchanged)."""
        return prf_value(self._key, self._domain, index)

    def values(self, count: int, start: int = 0) -> Iterator[int]:
        """Iterate ``count`` values starting at absolute index ``start``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for index in range(start, start + count):
            yield prf_value(self._key, self._domain, index)

    def reset(self) -> None:
        """Rewind the cursor to the beginning of the stream."""
        self._cursor = 0

    def fork(self, subdomain: bytes) -> "PrfStream":
        """An independent stream in a derived domain, sharing the key."""
        return PrfStream(self._key, self._domain + b"/" + subdomain)
