#!/usr/bin/env python3
"""Attack resilience: what an adversary learns without keys.

Probes the paper's security claim — "without the secret key, the cloaked
region preserves strong privacy properties, allowing no additional
information to be inferred even when the adversary has complete knowledge
about the location perturbation algorithm" — with two adversaries:

* a *structural* adversary that enumerates every reversal consistent with
  the public envelope metadata (algorithm, region, step counts), obtaining
  its exact posterior over the user's segment, and
* a *key-probing* adversary that tries random keys against the envelope.

Run:  python examples/attack_resilience_demo.py
"""

from repro import (
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.attacks import (
    KeyProbeAdversary,
    StructuralAdversary,
    segment_entropy,
    user_entropy,
)


def main() -> None:
    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=700, seed=13)
    simulator.run(4)
    snapshot = simulator.snapshot()

    user_segment = snapshot.occupied_segments()[20]
    profile = PrivacyProfile.uniform(
        levels=3, base_k=6, k_step=6, base_l=3, l_step=2, max_segments=60
    )
    chain = KeyChain.generate(profile.level_count)
    engine = ReverseCloakEngine(network)
    envelope = engine.anonymize(user_segment, snapshot, profile, chain)
    truth = engine.deanonymize(envelope, chain, target_level=0)

    print(f"cloak: {len(envelope.region)} segments over 3 levels "
          f"(user really on segment {user_segment})")

    # What each key level leaves uncertain (entropy in bits).
    print("\nposterior uncertainty by keys held:")
    for level in range(3, -1, -1):
        region = set(truth.regions[level])
        held = "none" if level == 3 else f"Key{level + 1}..Key3"
        print(f"  keys {held:<12} -> L{level}: "
              f"{segment_entropy(region):5.2f} bits over segments, "
              f"{user_entropy(region, snapshot):5.2f} bits over users")

    # Structural adversary: full algorithm knowledge, no keys.
    adversary = StructuralAdversary(network, max_sequences=100_000)
    posterior = adversary.attack_envelope(envelope, target_level=0)
    print(f"\nstructural adversary (no keys, exhaustive enumeration):")
    print(f"  consistent L0 candidates : {posterior.candidate_count}")
    print(f"  posterior entropy        : {posterior.entropy():.2f} bits")
    print(f"  P(true segment)          : "
          f"{posterior.probability_of({user_segment}):.3f}")
    weights = adversary.user_segment_posterior(envelope)
    top = sorted(weights.items(), key=lambda item: -item[1])[:5]
    print("  top-5 guesses            : "
          + ", ".join(f"s{sid} ({p:.2f})" for sid, p in top))

    # Key probing: every random chain is rejected.
    probe = KeyProbeAdversary(network, seed=99).probe(envelope, trials=10)
    print(f"\nkey-probing adversary: {probe['rejected']} rejected, "
          f"{probe['accepted']} accepted out of 10 random key chains")
    assert probe["accepted"] == 0

    print("\nreading: the adversary's best guess stays far from certainty,")
    print("while any granted key collapses the entropy to the next level —")
    print("exactly the multi-level control the paper claims (exp. E10).")


if __name__ == "__main__":
    main()
