#!/usr/bin/env python3
"""Multi-level access control: one cloak, many trust levels.

Reproduces the paper's end-to-end deployment story (Sections II and IV):
Alice cloaks her location once and uploads it to an LBS provider; her
personal access-control profile then hands different key subsets to
requesters according to their trust degree, and each requester locally
de-anonymizes as far as their keys allow:

* the LBS provider (no keys)   -> sees only the outermost region,
* a casual acquaintance        -> one level finer,
* a good friend                -> two levels finer,
* her family                   -> the exact road segment.

Run:  python examples/multilevel_access_control.py
"""

from repro import (
    AccessControlProfile,
    KeyChain,
    PrivacyProfile,
    Requester,
    TrafficSimulator,
    grid_network,
)
from repro.lbs import AnonymizerService, CloakRequest, LBSProvider, PoiDirectory


def main() -> None:
    # Deployment substrate: map, fleet, trusted anonymizer, LBS provider.
    network = grid_network(14, 14)
    simulator = TrafficSimulator(network, n_cars=900, seed=7)
    simulator.run(4)
    snapshot = simulator.snapshot()

    anonymizer = AnonymizerService(network)
    anonymizer.update_snapshot(snapshot)
    provider = LBSProvider(PoiDirectory(network, count=300, seed=11))

    # Alice's profile and keys (kept on her device / her 'Anonymizer').
    alice = snapshot.users()[17]
    profile = PrivacyProfile.uniform(
        levels=3, base_k=6, k_step=6, base_l=3, l_step=2, max_segments=80
    )
    chain = KeyChain.generate(profile.level_count)
    envelope = anonymizer.cloak(
        CloakRequest(user_id=alice, profile=profile, chain=chain)
    )
    provider.upload("alice", envelope)
    print(f"alice (user {alice}) uploaded a {len(envelope.region)}-segment cloak")

    # Her access-control profile: trust thresholds per exposed level.
    #   level 2 at trust >= 20, level 1 at >= 50, exact location at >= 90.
    acl = AccessControlProfile(chain, {2: 20, 1: 50, 0: 90})
    acl.register(Requester("coffee-app", trust_degree=5))
    acl.register(Requester("acquaintance", trust_degree=30))
    acl.register(Requester("good-friend", trust_degree=60))
    acl.register(Requester("family", trust_degree=95))

    print("\nrequester view of alice's location:")
    truth = None
    for who in ("coffee-app", "acquaintance", "good-friend", "family"):
        grant = acl.fetch_keys(who)
        stored = provider.envelope_of("alice")
        if not grant.keys:
            region = stored.region
            level = stored.top_level
        else:
            result = anonymizer.deanonymize(
                stored,
                {key.level: key for key in grant.keys},
                target_level=grant.access_level,
            )
            region = result.region_at(grant.access_level)
            level = grant.access_level
            if level == 0:
                truth = region
        print(f"  {who:<13} trust={acl.fetch_keys(who).access_level!s:>2} "
              f"keys={list(grant.key_levels) or '--'!s:<12} "
              f"-> L{level}: {len(region)} segment(s)")

    assert truth == (snapshot.segment_of(alice),)
    print(f"\nfamily pinpointed alice exactly: segment {truth[0]}")

    # The provider still serves everyone; key holders get tighter results.
    full_result = provider.serve_range_query("alice", radius=300.0)
    print(f"\nLBS range query (300 m): {full_result.candidate_count} candidate "
          f"POIs against the full cloak")


if __name__ == "__main__":
    main()
