#!/usr/bin/env python3
"""Quickstart: cloak a user, publish the envelope, selectively reverse it.

Walks the complete ReverseCloak flow on a small grid city:

1. build a road network and a simulated fleet (the paper's GTMobiSim role),
2. define a 3-level privacy profile (the user-defined ``(delta_k, sigma_s)``),
3. auto-generate per-level access keys and anonymize,
4. reverse the cloak with different key subsets and watch the exposed
   region shrink level by level.

Run:  python examples/quickstart.py
"""

from repro import (
    AnonymizerService,
    KeyChain,
    PrivacyProfile,
    TrafficSimulator,
    grid_network,
)


def main() -> None:
    # 1. Substrate: a 12x12 grid city with 600 cars driving shortest paths.
    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=600, seed=42)
    simulator.run(5)  # let traffic spread out for five seconds
    snapshot = simulator.snapshot()
    print(f"map: {network.name} with {network.segment_count} segments, "
          f"{snapshot.user_count} cars")

    # 2. The user and their multi-level privacy profile.
    user_segment = snapshot.occupied_segments()[10]
    profile = PrivacyProfile.uniform(
        levels=3,       # L1 (finest) .. L3 (coarsest, what the LBS sees)
        base_k=5,       # L1 hides the user among >= 5 users ...
        k_step=5,       # ... L2 among >= 10, L3 among >= 15
        base_l=3,       # and >= 3/5/7 road segments (segment l-diversity)
        l_step=2,
        max_segments=60,  # spatial tolerance sigma_s
    )
    print(f"user is on segment {user_segment} "
          f"({snapshot.count_on(user_segment)} cars there)")

    # 3. Keys + anonymization ("Auto key generation" + "Anonymize" buttons).
    chain = KeyChain.generate(profile.level_count)
    service = AnonymizerService(network)  # RGE by default, inline backend
    service.update_snapshot(snapshot)
    envelope = service.cloak_segment(user_segment, profile, chain)
    print(f"published cloak: {len(envelope.region)} segments, "
          f"steps per level {[record.steps for record in envelope.levels]}")

    # 4. Reversal with different privileges.
    print("\nwhat each requester sees:")
    print(f"  no keys (the LBS provider): {len(envelope.region)} segments")
    for target in (2, 1, 0):
        granted = {key.level: key for key in chain.suffix(target + 1)}
        result = service.deanonymize(envelope, granted, target_level=target)
        region = result.region_at(target)
        label = "exact segment" if target == 0 else f"L{target} region"
        print(f"  keys {sorted(granted)} -> {label}: "
              f"{len(region)} segment(s) {list(region) if target == 0 else ''}")

    # The full chain recovers the user's segment exactly.
    full = service.deanonymize(envelope, chain, target_level=0)
    assert full.region_at(0) == (user_segment,)
    print("\nround trip verified: L0 == the user's true segment")


if __name__ == "__main__":
    main()
