#!/usr/bin/env python3
"""Network front-end demo: drive a live anonymizer server over TCP —
and survive it going away.

The other examples call :class:`AnonymizerService` in process. This one
speaks to it the way a deployment would: it launches
``python -m repro.lbs.frontend`` as a separate process and connects a
:class:`~repro.lbs.ResilientClient` over the socket. The resilient
client is the deployment-shaped client — reconnect with deterministic
backoff, bounded retry of retryable structured errors, optional
per-request deadline budgets — so the demo can do what a
``FrontendClient`` demo cannot: **restart the server mid-stream** and
keep serving. The script cloaks half its users, SIGTERMs the server (a
graceful drain: in-flight work finishes, then exit 0), starts a fresh
server on the same port, and cloaks the rest through the same client
object, which quietly re-establishes the connection. A peel, a
``health`` probe, and a clean SIGINT drain round out the wire protocol.

Run:  python examples/frontend_client_demo.py
"""

import asyncio
import os
import signal
import socket
import subprocess
import sys

# Make the repo importable for both this script and the spawned server,
# whether or not the package is installed.
_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import KeyChain, PrivacyProfile  # noqa: E402
from repro.lbs import ResilientClient  # noqa: E402
from repro.lbs.wire import (  # noqa: E402
    CLOAK_REQUEST_FORMAT,
    DEANONYMIZE_REQUEST_FORMAT,
    WIRE_VERSION,
)

N_USERS = 6


def free_port() -> int:
    """Reserve an ephemeral port number the restarted server can reuse."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def launch_server(port: int) -> subprocess.Popen:
    """Start the front-end on ``port`` and wait for its readiness line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.lbs.frontend",
            "--port", str(port),
            "--backend", "thread",
            "--workers", "2",
            "--grid-side", "12",
            "--batch-window-ms", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline().split()
    if ready[:1] != ["FRONTEND_READY"]:
        raise RuntimeError(f"server failed to start: {proc.stderr.read()}")
    return proc


def cloak_document(user_id: int, profile: PrivacyProfile, chain: KeyChain) -> dict:
    """A cloak request in its wire form, as a remote client would build it."""
    return {
        "format": CLOAK_REQUEST_FORMAT,
        "version": WIRE_VERSION,
        "user_id": user_id,
        "profile": profile.to_dict(),
        "chain": chain.to_dict(),
    }


def describe(user_id: int, outcome: dict) -> None:
    envelope = outcome["envelope"]
    levels = ", ".join(
        f"L{spec['level']}(k={spec['k']})" for spec in envelope["levels"]
    )
    print(
        f"  user {user_id}: published region of "
        f"{len(envelope['region'])} segment(s); sealed levels {levels}"
    )


async def drive(host: str, port: int, restart_server) -> None:
    profile = PrivacyProfile.uniform(
        levels=3, base_k=4, k_step=4, base_l=2, l_step=1, max_segments=60
    )
    chains = {
        user_id: KeyChain.from_passphrases(
            [f"demo-{user_id}-L{level}" for level in range(3)]
        )
        for user_id in range(N_USERS)
    }
    half = N_USERS // 2

    async with ResilientClient(host, port) as client:
        # Act one: ordinary serving. One connection, requests multiplexed
        # by echoed request_id, coalesced into batched backend calls.
        outcomes = {}
        for user_id in range(half):
            outcomes[user_id] = await client.request(
                cloak_document(user_id, profile, chains[user_id])
            )
        print(f"cloaked users 0..{half - 1} against the first server:")
        for user_id in range(half):
            describe(user_id, outcomes[user_id])

        # Act two: the server goes away — gracefully — and a replacement
        # comes up on the same port. The client object stays; its next
        # request finds the dead connection and re-establishes it.
        restart_server()
        print("server restarted; same client keeps serving:")
        for user_id in range(half, N_USERS):
            outcomes[user_id] = await client.request(
                cloak_document(user_id, profile, chains[user_id])
            )
            describe(user_id, outcomes[user_id])
        print(f"client reconnects: {client.reconnects} (retries: {client.retries})")

        # Reverse one cloak served by the *first* server with keys held
        # locally: envelopes are self-describing, so the replacement
        # server peels them identically.
        target = 0
        peel = await client.request(
            {
                "format": DEANONYMIZE_REQUEST_FORMAT,
                "version": WIRE_VERSION,
                "envelope": outcomes[target]["envelope"],
                "keys": [key.to_dict() for key in chains[target]],
                "target_level": 0,
            }
        )
        region = peel["result"]["regions"]["0"]
        print(f"peeled user {target} back to level 0: segment(s) {region}")

        health = await client.health()
        print(f"health: {health['status']}; front-end counters:")
        for key in (
            "connections",
            "batches_coalesced",
            "connections_evicted",
            "idle_timeouts",
            "frames_rejected",
            "frontend_requests_shed",
        ):
            print(f"  {key}: {health['counters'][key]}")


def main() -> int:
    port = free_port()
    procs = [launch_server(port)]
    print(f"front-end listening on 127.0.0.1:{port}")

    def restart_server():
        # SIGTERM drains: stop accepting, finish in-flight, exit 0.
        procs[-1].send_signal(signal.SIGTERM)
        out, _err = procs[-1].communicate(timeout=30)
        print(
            f"first server drained and exited {procs[-1].returncode} "
            f"({'draining reported' if 'draining' in out else 'no drain log'})"
        )
        procs.append(launch_server(port))

    try:
        asyncio.run(drive("127.0.0.1", port, restart_server))

        # A clean shutdown of the replacement: SIGINT drains like SIGTERM.
        procs[-1].send_signal(signal.SIGINT)
        out, _err = procs[-1].communicate(timeout=30)
        print(f"second server drained and exited {procs[-1].returncode}")
        sys.stdout.write(out)
        return procs[-1].returncode or 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
