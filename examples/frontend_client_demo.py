#!/usr/bin/env python3
"""Network front-end demo: drive a live anonymizer server over TCP.

The other examples call :class:`AnonymizerService` in process. This one
speaks to it the way a deployment would: it launches
``python -m repro.lbs.frontend`` as a separate process, connects a
:class:`~repro.lbs.FrontendClient` over the socket, and exercises the
wire protocol end to end — concurrent cloaks multiplexed on one
connection, a de-anonymization built from a returned envelope, a
``stats`` request for the server's merged counters, and a clean
SIGINT drain.

Run:  python examples/frontend_client_demo.py
"""

import asyncio
import os
import signal
import subprocess
import sys

# Make the repo importable for both this script and the spawned server,
# whether or not the package is installed.
_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import KeyChain, PrivacyProfile  # noqa: E402
from repro.lbs import FrontendClient  # noqa: E402
from repro.lbs.wire import (  # noqa: E402
    CLOAK_REQUEST_FORMAT,
    DEANONYMIZE_REQUEST_FORMAT,
    WIRE_VERSION,
)

N_USERS = 6


def launch_server() -> subprocess.Popen:
    """Start the front-end on an ephemeral port and wait for readiness."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.lbs.frontend",
            "--port", "0",
            "--backend", "thread",
            "--workers", "2",
            "--grid-side", "12",
            "--batch-window-ms", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def cloak_document(user_id: int, profile: PrivacyProfile, chain: KeyChain) -> dict:
    """A cloak request in its wire form, as a remote client would build it."""
    return {
        "format": CLOAK_REQUEST_FORMAT,
        "version": WIRE_VERSION,
        "user_id": user_id,
        "profile": profile.to_dict(),
        "chain": [key.to_dict() for key in chain],
    }


async def drive(host: str, port: int) -> None:
    profile = PrivacyProfile.uniform(
        levels=3, base_k=4, k_step=4, base_l=2, l_step=1, max_segments=60
    )
    chains = {
        user_id: KeyChain.from_passphrases(
            [f"demo-{user_id}-L{level}" for level in range(3)]
        )
        for user_id in range(N_USERS)
    }

    async with await FrontendClient.connect(host, port) as client:
        # One connection, many requests in flight: submit() returns a
        # future per request and the reader task de-multiplexes replies
        # by their echoed request_id. The server coalesces these into
        # batched backend calls.
        futures = [
            client.submit(cloak_document(user_id, profile, chains[user_id]))
            for user_id in range(N_USERS)
        ]
        outcomes = await asyncio.gather(*futures)
        print(f"cloaked {len(outcomes)} users over one connection:")
        for user_id, outcome in enumerate(outcomes):
            regions = outcome["envelope"]["regions"]
            sizes = ", ".join(
                f"L{level}={len(region)}" for level, region in sorted(regions.items())
            )
            print(f"  user {user_id}: region sizes {sizes}")

        # Reverse one cloak: the published envelope plus the granted keys
        # travel back over the wire; level 0 is the exact segment.
        target = 0
        peel = await client.request(
            {
                "format": DEANONYMIZE_REQUEST_FORMAT,
                "version": WIRE_VERSION,
                "envelope": outcomes[target]["envelope"],
                "keys": [key.to_dict() for key in chains[target]],
                "target_level": 0,
            }
        )
        region = peel["result"]["regions"]["0"]
        print(f"peeled user {target} back to level 0: segment(s) {region}")

        stats = await client.stats()
        counters = stats["counters"]
        print("server counters:")
        for key in (
            "requests_served",
            "batches_coalesced",
            "connections",
            "frames_rejected",
            "frontend_requests_shed",
        ):
            print(f"  {key}: {counters[key]}")


def main() -> int:
    proc = launch_server()
    try:
        ready = proc.stdout.readline().split()
        if ready[:1] != ["FRONTEND_READY"]:
            print("server failed to start:", proc.stderr.read(), file=sys.stderr)
            return 1
        host, port = ready[1], int(ready[2])
        print(f"front-end listening on {host}:{port}")
        asyncio.run(drive(host, port))

        # A clean shutdown: SIGINT makes the server stop accepting,
        # drain in-flight work, and exit 0.
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        print(f"server drained and exited {proc.returncode}")
        sys.stdout.write(out)
        return proc.returncode or 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
