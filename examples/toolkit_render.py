#!/usr/bin/env python3
"""Figure 4 at full paper scale: the Anonymizer visualisation.

Builds the Atlanta-scale synthetic map (6,979 junctions / 9,187 segments,
matching the USGS map the paper used), drops 10,000 Gaussian-distributed
cars on it, cloaks one user under three levels, and renders the coloured
multi-level regions plus the fleet to ``toolkit_render.svg`` and the
terminal (ASCII).

This is the slow, full-scale variant of benchmark E4 (which runs at
quarter scale); expect ~1-2 minutes, dominated by shortest-path routing for
the 10,000-car fleet.

Run:  python examples/toolkit_render.py [--scale 0.25]
"""

import argparse
import time

from repro import (
    GaussianPlacement,
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    atlanta_like,
)
from repro.roadnet import network_stats
from repro.toolkit import SvgMapRenderer, render_ascii_map


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="map scale (1.0 = the paper's 6979/9187; smaller is faster)",
    )
    parser.add_argument("--out", default="toolkit_render.svg")
    args = parser.parse_args()

    started = time.perf_counter()
    network = atlanta_like(scale=args.scale)
    stats = network_stats(network)
    print(stats.describe())

    n_cars = int(10_000 * args.scale)
    simulator = TrafficSimulator(
        network,
        n_cars=n_cars,
        seed=2017,
        placement=GaussianPlacement(hotspots=((0.4, 0.6), (0.65, 0.35))),
    )
    simulator.run(3)
    snapshot = simulator.snapshot()
    print(f"fleet: {snapshot.user_count} cars "
          f"({time.perf_counter() - started:.1f}s elapsed)")

    user_segment = max(
        snapshot.occupied_segments(),
        key=lambda sid: (snapshot.count_on(sid), -sid),
    )
    profile = PrivacyProfile.uniform(
        levels=3, base_k=10, k_step=10, base_l=4, l_step=2, max_segments=90
    )
    chain = KeyChain.generate(profile.level_count)
    engine = ReverseCloakEngine(network)
    envelope = engine.anonymize(user_segment, snapshot, profile, chain)
    regions = engine.deanonymize(envelope, chain, target_level=0).regions
    print(f"cloak sizes by level: "
          f"{ {level: len(region) for level, region in sorted(regions.items())} }")

    renderer = SvgMapRenderer(network, width=1400)
    renderer.render_to_file(
        args.out,
        regions_by_level=regions,
        car_positions=simulator.positions().values(),
        title=f"ReverseCloak Anonymizer — {network.name}, "
        f"{snapshot.user_count} cars",
    )
    print(f"SVG written to {args.out} "
          f"({time.perf_counter() - started:.1f}s elapsed)")

    print("\nterminal preview (digits = privacy levels, 0 = the user):")
    print(render_ascii_map(network, regions, width=100, height=34))


if __name__ == "__main__":
    main()
