#!/usr/bin/env python3
"""LBS query workload: the privacy/performance trade-off, quantified.

The paper bounds the cloaking region because its size drives "the
performance of the anonymous query processing technique". This example runs
a realistic workload — a fleet of cars, a stream of cloaking requests, and
range queries served against cloaks at different privilege levels — and
prints the candidate-set sizes a requester pays at each level.

Run:  python examples/lbs_query_workload.py
"""

import statistics

from repro import (
    KeyChain,
    PrivacyProfile,
    ReversiblePreassignmentExpansion,
    TrafficSimulator,
    grid_network,
)
from repro.lbs import (
    AnonymizerService,
    CloakRequest,
    LBSProvider,
    PoiDirectory,
    ThreadPoolBackend,
)
from repro.metrics import Timer


N_USERS = 12
RADIUS = 250.0


def main() -> None:
    network = grid_network(16, 16)
    simulator = TrafficSimulator(network, n_cars=1500, seed=3)
    simulator.run(5)
    snapshot = simulator.snapshot()

    # RPLE this time: pre-assign once, then serve the request stream fast.
    with Timer() as preassign_timer:
        algorithm = ReversiblePreassignmentExpansion.for_network(network)
    print(f"RPLE pre-assignment over {network.segment_count} segments: "
          f"{preassign_timer.elapsed * 1000:.0f} ms "
          f"({algorithm.preassignment.memory_bytes() / 1024:.0f} KiB of tables)")

    anonymizer = AnonymizerService(
        network, algorithm, backend=ThreadPoolBackend(4)
    )
    anonymizer.update_snapshot(snapshot)
    provider = LBSProvider(PoiDirectory(network, count=800, seed=5))

    profile = PrivacyProfile.uniform(
        levels=3, base_k=8, k_step=8, base_l=3, l_step=2, max_segments=100
    )

    # Serve the request stream as one batch on the execution backend.
    chains = {
        user_id: KeyChain.generate(profile.level_count)
        for user_id in snapshot.users()[:N_USERS]
    }
    requests = [
        CloakRequest(user_id=user_id, profile=profile, chain=chain)
        for user_id, chain in chains.items()
    ]
    with Timer() as cloak_timer:
        outcomes = anonymizer.cloak_batch(requests)
    for outcome in outcomes:
        if not outcome.ok:  # failed requests surface here, per request
            raise outcome.error
        provider.upload(f"user-{outcome.request.user_id}", outcome.envelope)
    print(f"cloaked {N_USERS} users in {cloak_timer.elapsed * 1000:.1f} ms "
          f"({cloak_timer.elapsed * 1000 / N_USERS:.2f} ms each)")

    # Query cost per privilege level.
    per_level = {level: [] for level in range(4)}
    precision = {level: [] for level in range(4)}
    for user_id, chain in chains.items():
        stored = provider.envelope_of(f"user-{user_id}")
        truth = anonymizer.deanonymize(stored, chain, target_level=0)
        true_segment = snapshot.segment_of(user_id)
        for level in range(4):
            result = provider.serve_range_query(
                f"user-{user_id}",
                radius=RADIUS,
                region_override=truth.regions[level],
            )
            per_level[level].append(result.candidate_count)
            precision[level].append(result.precision_for(true_segment))

    print(f"\nrange-query cost by exposed level (radius {RADIUS:.0f} m, "
          f"mean over {N_USERS} users):")
    print(f"  {'level':<8}{'candidates':>12}{'precision':>12}")
    for level in range(4):
        print(f"  L{level:<7}{statistics.mean(per_level[level]):>12.1f}"
              f"{statistics.mean(precision[level]):>12.3f}")
    print("\nreading: unlocking finer levels buys smaller candidate sets —")
    print("the quantitative payoff of selective de-anonymization (exp. E12).")


if __name__ == "__main__":
    main()
