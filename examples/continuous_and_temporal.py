#!/usr/bin/env python3
"""Time matters: temporal deferral and the intersection attack.

Two time-dimension phenomena around ReverseCloak, in one script:

1. **Temporal deferral** (Algorithm 1's ``sigma_t``): requests that cannot
   reach k-anonymity within a *tight* spatial tolerance succeed a few
   simulated seconds later, once traffic has drifted in.
2. **The intersection attack**: re-cloaking a moving user independently per
   tick is vulnerable — an adversary who links the stream intersects the
   per-tick candidate sets and erodes anonymity far below k.

Run:  python examples/continuous_and_temporal.py
"""

from repro import (
    KeyChain,
    PrivacyProfile,
    ReverseCloakEngine,
    TrafficSimulator,
    grid_network,
)
from repro.attacks import IntersectionAttack
from repro.errors import CloakingError
from repro.lbs import ContinuousCloaker, DeferredCloaking, TemporalTolerance


def temporal_deferral_demo() -> None:
    print("=" * 64)
    print("1. temporal deferral: waiting instead of failing")
    print("=" * 64)
    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=450, seed=14)
    simulator.run(2)
    engine = ReverseCloakEngine(network)

    # A demanding profile: 8 users inside at most 5 segments.
    tight = PrivacyProfile.uniform(
        levels=1, base_k=8, k_step=0, base_l=2, l_step=0, max_segments=5
    )
    chain = KeyChain.generate(1)
    snapshot = simulator.snapshot()
    users = snapshot.users()[:25]
    failed_now = []
    for user_id in users:
        try:
            engine.anonymize(snapshot.segment_of(user_id), snapshot, tight, chain)
        except CloakingError:
            failed_now.append(user_id)
    print(f"immediately: {len(users) - len(failed_now)}/{len(users)} "
          f"requests succeed; {len(failed_now)} hit the spatial tolerance")

    deferred = DeferredCloaking(engine, simulator)
    rescued = 0
    for user_id in failed_now:
        try:
            result = deferred.cloak_user(
                user_id, tight, chain, TemporalTolerance(60.0, 2.0)
            )
        except CloakingError:
            continue
        rescued += 1
        print(f"  user {user_id}: rescued after "
              f"{result.deferred_seconds:.0f}s of simulated waiting")
    print(f"with a 60s temporal budget: {rescued}/{len(failed_now)} "
          f"failures rescued\n")


def intersection_attack_demo() -> None:
    print("=" * 64)
    print("2. intersection attack on continuous cloaking")
    print("=" * 64)
    network = grid_network(12, 12)
    simulator = TrafficSimulator(network, n_cars=600, seed=15)
    simulator.run(2)
    engine = ReverseCloakEngine(network)
    profile = PrivacyProfile.uniform(
        levels=1, base_k=10, k_step=0, base_l=3, l_step=0, max_segments=80
    )

    victim = simulator.snapshot().users()[4]
    cloaker = ContinuousCloaker(engine, simulator, profile)
    timeline = cloaker.run(victim, ticks=8, interval_seconds=6.0)
    trace = IntersectionAttack().user_candidates(timeline)

    print(f"victim {victim} cloaked 8 times (k=10 each time)")
    print("adversary's candidate set after each observation:")
    for tick, (count, bits) in enumerate(
        zip(trace.candidate_counts, trace.entropy_series()), start=1
    ):
        bar = "#" * count
        print(f"  tick {tick}: {count:>3} candidates ({bits:4.1f} bits)  {bar}")
    if trace.identified:
        print(f"-> victim uniquely identified after "
              f"{trace.ticks_to_identify + 1} observations, despite k=10 "
              f"per cloak")
    else:
        print(f"-> {len(trace.final_candidates)} candidates survive")
    assert victim in trace.final_candidates
    print("\nreading: per-snapshot k-anonymity does not compose over time —")
    print("continuous queries need temporal defences (exp. E15 quantifies).")


if __name__ == "__main__":
    temporal_deferral_demo()
    intersection_attack_demo()
